"""The ``repro serve`` / ``submit`` / ``status`` / ``worker`` verbs."""

from __future__ import annotations

import filecmp
import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api.cli import main
from repro.api.specs import AlgorithmSpec, SweepSpec, WorkloadSpec
from repro.api.store import run_sweep


def _run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def _spec_file(tmp_path, seeds=(1, 2)):
    spec = SweepSpec(
        experiment="cli-service",
        algorithms=(
            AlgorithmSpec("theorem2-listing", {"repetitions": 1, "epsilon": 0.5}),
            AlgorithmSpec("naive-two-hop"),
        ),
        workload=WorkloadSpec("gnp", {"num_nodes": 16, "edge_probability": 0.5}),
        seeds=seeds,
    )
    path = tmp_path / "sweep.json"
    path.write_text(spec.to_json(indent=2), encoding="utf-8")
    return spec, path


@pytest.fixture
def served_root(tmp_path):
    """``repro serve`` as a real subprocess, stopped (and checked) on exit."""
    root = tmp_path / "svc"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(root), "--workers", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 30.0
    while not (root / "service.json").exists():
        if process.poll() is not None or time.monotonic() > deadline:
            out, err = process.communicate(timeout=5)
            raise AssertionError(f"serve did not come up: {out!r} {err!r}")
        time.sleep(0.05)
    yield root
    if process.poll() is None:
        main(["serve", str(root), "--stop"])
        process.wait(timeout=30)
    assert process.returncode == 0


class TestServeSubmitStatus:
    def test_full_round_trip(self, capsys, served_root, tmp_path):
        spec, spec_path = _spec_file(tmp_path)
        serial = tmp_path / "serial.jsonl"
        run_sweep(spec, serial)

        out_path = tmp_path / "fleet.jsonl"
        code, out, _ = _run(
            capsys,
            "submit", str(served_root), str(spec_path),
            "--out", str(out_path), "--json",
        )
        assert code == 0
        job = json.loads(out)["job"]
        assert job["state"] == "done"
        assert job["cells_done"] == 4
        assert filecmp.cmp(serial, out_path, shallow=False)

        code, out, _ = _run(capsys, "status", str(served_root), "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["service"]["managed_workers"] == 1
        assert any(entry["state"] == "done" for entry in payload["jobs"])

        code, out, _ = _run(capsys, "status", str(served_root))
        assert code == 0
        assert "cells/s" in out and str(out_path) in out

    def test_submit_default_out_is_next_to_the_spec(
        self, capsys, served_root, tmp_path
    ):
        spec, spec_path = _spec_file(tmp_path, seeds=(1,))
        code, out, _ = _run(capsys, "submit", str(served_root), str(spec_path))
        assert code == 0
        assert spec_path.with_suffix(".records.jsonl").exists()
        assert "cells/s" in out and "first record" in out

    def test_submit_no_wait_returns_immediately(
        self, capsys, served_root, tmp_path
    ):
        from repro.service import ServiceClient

        _, spec_path = _spec_file(tmp_path, seeds=(1,))
        out_path = tmp_path / "fleet.jsonl"
        code, out, _ = _run(
            capsys,
            "submit", str(served_root), str(spec_path),
            "--out", str(out_path), "--no-wait",
        )
        assert code == 0
        assert "repro status" in out
        with ServiceClient.connect(served_root) as client:
            job_id = client.status()["jobs"][-1]["id"]
            job = client.wait_job(job_id, timeout=60)
        assert job["state"] == "done"

    def test_submit_progress_lines_go_to_stderr(
        self, capsys, served_root, tmp_path
    ):
        _, spec_path = _spec_file(tmp_path, seeds=(1,))
        code, _, err = _run(
            capsys,
            "submit", str(served_root), str(spec_path),
            "--out", str(tmp_path / "fleet.jsonl"),
        )
        assert code == 0
        assert "/2 cells" in err


class TestServiceCliErrors:
    def test_submit_without_a_service_exits_2(self, capsys, tmp_path):
        _, spec_path = _spec_file(tmp_path, seeds=(1,))
        code, _, err = _run(capsys, "submit", str(tmp_path), str(spec_path))
        assert code == 2
        assert "no experiment service" in err

    def test_status_without_a_service_exits_2(self, capsys, tmp_path):
        code, _, err = _run(capsys, "status", str(tmp_path))
        assert code == 2
        assert "no experiment service" in err

    def test_stop_without_a_service_exits_2(self, capsys, tmp_path):
        code, _, err = _run(capsys, "serve", str(tmp_path), "--stop")
        assert code == 2
        assert "no experiment service" in err

    def test_submit_rejects_a_run_spec(self, capsys, served_root, tmp_path):
        from repro.api.specs import RunSpec

        spec = RunSpec(
            algorithm=AlgorithmSpec("naive-two-hop"),
            workload=WorkloadSpec("cycle", {"num_nodes": 6}),
        )
        path = tmp_path / "run.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        code, _, err = _run(capsys, "submit", str(served_root), str(path))
        assert code == 2
        assert "sweep" in err

    def test_submit_missing_spec_file_exits_2(self, capsys, tmp_path):
        code, _, err = _run(
            capsys, "submit", str(tmp_path), str(tmp_path / "nope.json")
        )
        assert code == 2
        assert "cannot read spec file" in err


def _slow_spec_file(tmp_path, probe_spec, seeds=(1, 2), slow_seconds=1.5):
    """A probe sweep whose cells sleep — leases stay open long enough
    to be interrupted mid-flight."""
    spec = probe_spec(seeds=seeds, slow_seconds=slow_seconds)
    path = tmp_path / "slow-sweep.json"
    path.write_text(spec.to_json(indent=2), encoding="utf-8")
    return spec, path


def _spawn(*argv):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def _wait_for_service(root, process, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not (root / "service.json").exists():
        if process.poll() is not None or time.monotonic() > deadline:
            out, err = process.communicate(timeout=5)
            raise AssertionError(f"serve did not come up: {out!r} {err!r}")
        time.sleep(0.05)


def _wait_for_job(root, predicate, timeout=30.0):
    """Poll the newest job's status until ``predicate(job)`` holds."""
    from repro.service import ServiceClient

    deadline = time.monotonic() + timeout
    while True:
        with ServiceClient.connect(root) as client:
            jobs = client.status()["jobs"]
            if jobs and predicate(jobs[-1]):
                return jobs[-1]
        if time.monotonic() > deadline:
            raise AssertionError(f"job never reached the expected state: {jobs}")
        time.sleep(0.05)


class TestGracefulShutdown:
    """SIGTERM mid-lease: exit 0, requeued lease, byte-identical resume."""

    def test_sigterm_dispatcher_mid_lease_then_resume(
        self, capsys, tmp_path, probe_spec, serial_store
    ):
        spec, spec_path = _slow_spec_file(tmp_path, probe_spec)
        serial = serial_store(spec, tmp_path / "serial.jsonl")
        root = tmp_path / "svc"
        out_path = tmp_path / "fleet.jsonl"

        serve = _spawn(
            "serve", str(root), "--workers", "1",
            "--preload", "repro.service.probes",
        )
        try:
            _wait_for_service(root, serve)
            code, _, _ = _run(
                capsys,
                "submit", str(root), str(spec_path),
                "--out", str(out_path), "--no-wait",
            )
            assert code == 0
            _wait_for_job(root, lambda job: job["cells_leased"] >= 1)
            serve.send_signal(signal.SIGTERM)
            assert serve.wait(timeout=30) == 0
        finally:
            if serve.poll() is None:
                serve.kill()
                serve.wait(timeout=10)
        assert not (root / "service.json").exists()

        # The interrupted store is a valid prefix; a restarted service
        # resumes it and the final file matches the serial run exactly.
        serve = _spawn(
            "serve", str(root), "--workers", "1",
            "--preload", "repro.service.probes",
        )
        try:
            _wait_for_service(root, serve)
            code, out, _ = _run(
                capsys,
                "submit", str(root), str(spec_path),
                "--out", str(out_path), "--resume", "--json",
            )
            assert code == 0
            assert json.loads(out)["job"]["state"] == "done"
        finally:
            main(["serve", str(root), "--stop"])
            assert serve.wait(timeout=30) == 0
        assert filecmp.cmp(serial, out_path, shallow=False)

    def test_sigterm_worker_mid_lease_requeues_and_completes(
        self, capsys, tmp_path, probe_spec, serial_store
    ):
        spec, spec_path = _slow_spec_file(tmp_path, probe_spec)
        serial = serial_store(spec, tmp_path / "serial.jsonl")
        root = tmp_path / "svc"
        out_path = tmp_path / "fleet.jsonl"

        serve = _spawn(
            "serve", str(root), "--workers", "0",
            "--preload", "repro.service.probes",
        )
        worker = None
        replacement = None
        try:
            _wait_for_service(root, serve)
            worker = _spawn(
                "worker", str(root), "--preload", "repro.service.probes"
            )
            code, _, _ = _run(
                capsys,
                "submit", str(root), str(spec_path),
                "--out", str(out_path), "--no-wait",
            )
            assert code == 0
            _wait_for_job(root, lambda job: job["cells_leased"] >= 1)

            worker.send_signal(signal.SIGTERM)
            assert worker.wait(timeout=30) == 0

            # The abandoned lease is revoked and its cell requeued; the
            # job keeps running, waiting for capacity.
            job = _wait_for_job(
                root,
                lambda job: job["state"] == "running"
                and job["cells_leased"] == 0
                and job["cells_pending"] >= 1,
            )
            assert job["cells_done"] < job["cells_total"]

            replacement = _spawn(
                "worker", str(root), "--preload", "repro.service.probes"
            )
            job = _wait_for_job(
                root, lambda job: job["state"] != "running", timeout=60.0
            )
            assert job["state"] == "done"
        finally:
            for process in (worker, replacement):
                if process is not None and process.poll() is None:
                    process.terminate()
                    process.wait(timeout=10)
            main(["serve", str(root), "--stop"])
            assert serve.wait(timeout=30) == 0
        assert filecmp.cmp(serial, out_path, shallow=False)


class TestReproPreload:
    def test_env_preload_registers_modules(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PRELOAD", "repro.service.probes")
        code, out, _ = _run(capsys, "list", "--json")
        assert code == 0
        names = {entry["name"] for entry in json.loads(out)["algorithms"]}
        assert "service-probe" in names

    def test_env_preload_failure_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PRELOAD", "no.such.module")
        code, _, err = _run(capsys, "list")
        assert code == 2
        assert "no.such.module" in err
