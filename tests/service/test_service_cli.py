"""The ``repro serve`` / ``submit`` / ``status`` / ``worker`` verbs."""

from __future__ import annotations

import filecmp
import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api.cli import main
from repro.api.specs import AlgorithmSpec, SweepSpec, WorkloadSpec
from repro.api.store import run_sweep


def _run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def _spec_file(tmp_path, seeds=(1, 2)):
    spec = SweepSpec(
        experiment="cli-service",
        algorithms=(
            AlgorithmSpec("theorem2-listing", {"repetitions": 1, "epsilon": 0.5}),
            AlgorithmSpec("naive-two-hop"),
        ),
        workload=WorkloadSpec("gnp", {"num_nodes": 16, "edge_probability": 0.5}),
        seeds=seeds,
    )
    path = tmp_path / "sweep.json"
    path.write_text(spec.to_json(indent=2), encoding="utf-8")
    return spec, path


@pytest.fixture
def served_root(tmp_path):
    """``repro serve`` as a real subprocess, stopped (and checked) on exit."""
    root = tmp_path / "svc"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(root), "--workers", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 30.0
    while not (root / "service.json").exists():
        if process.poll() is not None or time.monotonic() > deadline:
            out, err = process.communicate(timeout=5)
            raise AssertionError(f"serve did not come up: {out!r} {err!r}")
        time.sleep(0.05)
    yield root
    if process.poll() is None:
        main(["serve", str(root), "--stop"])
        process.wait(timeout=30)
    assert process.returncode == 0


class TestServeSubmitStatus:
    def test_full_round_trip(self, capsys, served_root, tmp_path):
        spec, spec_path = _spec_file(tmp_path)
        serial = tmp_path / "serial.jsonl"
        run_sweep(spec, serial)

        out_path = tmp_path / "fleet.jsonl"
        code, out, _ = _run(
            capsys,
            "submit", str(served_root), str(spec_path),
            "--out", str(out_path), "--json",
        )
        assert code == 0
        job = json.loads(out)["job"]
        assert job["state"] == "done"
        assert job["cells_done"] == 4
        assert filecmp.cmp(serial, out_path, shallow=False)

        code, out, _ = _run(capsys, "status", str(served_root), "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["service"]["managed_workers"] == 1
        assert any(entry["state"] == "done" for entry in payload["jobs"])

        code, out, _ = _run(capsys, "status", str(served_root))
        assert code == 0
        assert "cells/s" in out and str(out_path) in out

    def test_submit_default_out_is_next_to_the_spec(
        self, capsys, served_root, tmp_path
    ):
        spec, spec_path = _spec_file(tmp_path, seeds=(1,))
        code, out, _ = _run(capsys, "submit", str(served_root), str(spec_path))
        assert code == 0
        assert spec_path.with_suffix(".records.jsonl").exists()
        assert "cells/s" in out and "first record" in out

    def test_submit_no_wait_returns_immediately(
        self, capsys, served_root, tmp_path
    ):
        from repro.service import ServiceClient

        _, spec_path = _spec_file(tmp_path, seeds=(1,))
        out_path = tmp_path / "fleet.jsonl"
        code, out, _ = _run(
            capsys,
            "submit", str(served_root), str(spec_path),
            "--out", str(out_path), "--no-wait",
        )
        assert code == 0
        assert "repro status" in out
        with ServiceClient.connect(served_root) as client:
            job_id = client.status()["jobs"][-1]["id"]
            job = client.wait_job(job_id, timeout=60)
        assert job["state"] == "done"

    def test_submit_progress_lines_go_to_stderr(
        self, capsys, served_root, tmp_path
    ):
        _, spec_path = _spec_file(tmp_path, seeds=(1,))
        code, _, err = _run(
            capsys,
            "submit", str(served_root), str(spec_path),
            "--out", str(tmp_path / "fleet.jsonl"),
        )
        assert code == 0
        assert "/2 cells" in err


class TestServiceCliErrors:
    def test_submit_without_a_service_exits_2(self, capsys, tmp_path):
        _, spec_path = _spec_file(tmp_path, seeds=(1,))
        code, _, err = _run(capsys, "submit", str(tmp_path), str(spec_path))
        assert code == 2
        assert "no experiment service" in err

    def test_status_without_a_service_exits_2(self, capsys, tmp_path):
        code, _, err = _run(capsys, "status", str(tmp_path))
        assert code == 2
        assert "no experiment service" in err

    def test_stop_without_a_service_exits_2(self, capsys, tmp_path):
        code, _, err = _run(capsys, "serve", str(tmp_path), "--stop")
        assert code == 2
        assert "no experiment service" in err

    def test_submit_rejects_a_run_spec(self, capsys, served_root, tmp_path):
        from repro.api.specs import RunSpec

        spec = RunSpec(
            algorithm=AlgorithmSpec("naive-two-hop"),
            workload=WorkloadSpec("cycle", {"num_nodes": 6}),
        )
        path = tmp_path / "run.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        code, _, err = _run(capsys, "submit", str(served_root), str(path))
        assert code == 2
        assert "sweep" in err

    def test_submit_missing_spec_file_exits_2(self, capsys, tmp_path):
        code, _, err = _run(
            capsys, "submit", str(tmp_path), str(tmp_path / "nope.json")
        )
        assert code == 2
        assert "cannot read spec file" in err


class TestReproPreload:
    def test_env_preload_registers_modules(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PRELOAD", "repro.service.probes")
        code, out, _ = _run(capsys, "list", "--json")
        assert code == 0
        names = {entry["name"] for entry in json.loads(out)["algorithms"]}
        assert "service-probe" in names

    def test_env_preload_failure_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PRELOAD", "no.such.module")
        code, _, err = _run(capsys, "list")
        assert code == 2
        assert "no.such.module" in err
