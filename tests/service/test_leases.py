"""The cell-lease state machine: at-least-once execution, exactly-once records."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service.leases import CellLeaseTable


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestHappyPath:
    def test_cells_lease_in_submission_order(self, clock):
        table = CellLeaseTable(total=3, clock=clock)
        cells = [table.lease(f"w{i}", 10.0).cell for i in range(3)]
        assert cells == [0, 1, 2]
        assert table.lease("w9", 10.0) is None

    def test_complete_marks_done_exactly_once(self, clock):
        table = CellLeaseTable(total=2, clock=clock)
        lease = table.lease("w1", 10.0)
        assert table.complete(lease.lease_id) == lease.cell
        assert table.is_done(lease.cell)
        assert table.done_count == 1
        assert not table.finished
        other = table.lease("w1", 10.0)
        table.complete(other.lease_id)
        assert table.finished

    def test_unknown_lease_id_is_a_protocol_bug(self, clock):
        table = CellLeaseTable(total=1, clock=clock)
        with pytest.raises(ServiceError, match="unknown lease"):
            table.complete(999)

    def test_counts(self, clock):
        table = CellLeaseTable(total=4, clock=clock)
        table.lease("w1", 10.0)
        assert (table.pending_count, table.leased_count, table.done_count) == (
            3,
            1,
            0,
        )

    def test_negative_total_is_refused(self, clock):
        with pytest.raises(ServiceError, match=">= 0"):
            CellLeaseTable(total=-1, clock=clock)


class TestExpiry:
    def test_expired_lease_requeues_to_the_front(self, clock):
        table = CellLeaseTable(total=3, clock=clock)
        first = table.lease("w1", timeout=5.0)
        table.lease("w2", timeout=50.0)
        clock.advance(5.0)
        expired = table.expire()
        assert [lease.cell for lease in expired] == [first.cell]
        assert expired[0].revoked
        # Recovery work comes before new work.
        assert table.lease("w3", 5.0).cell == first.cell

    def test_expire_is_idempotent(self, clock):
        table = CellLeaseTable(total=1, clock=clock)
        table.lease("w1", timeout=1.0)
        clock.advance(2.0)
        assert len(table.expire()) == 1
        assert table.expire() == []
        assert table.pending_count == 1

    def test_late_record_from_expired_lease_still_lands(self, clock):
        table = CellLeaseTable(total=1, clock=clock)
        slow = table.lease("w1", timeout=1.0)
        clock.advance(2.0)
        table.expire()
        # The slow-but-alive worker delivers after expiry, before anyone
        # re-ran the cell: accept it and pull the cell off the queue.
        assert table.complete(slow.lease_id) == slow.cell
        assert table.pending_count == 0
        assert table.finished

    def test_duplicate_completion_after_requeue_is_dropped(self, clock):
        table = CellLeaseTable(total=1, clock=clock)
        slow = table.lease("w1", timeout=1.0)
        clock.advance(2.0)
        table.expire()
        retry = table.lease("w2", timeout=10.0)
        assert retry.cell == slow.cell
        assert table.complete(retry.lease_id) == retry.cell
        assert table.complete(slow.lease_id) is None  # duplicate: dropped
        assert table.done_count == 1
        assert table.finished


class TestRevocation:
    def test_revoke_worker_requeues_only_its_cells(self, clock):
        table = CellLeaseTable(total=3, clock=clock)
        mine = table.lease("w1", 10.0)
        table.lease("w2", 10.0)
        revoked = table.revoke_worker("w1")
        assert [lease.cell for lease in revoked] == [mine.cell]
        assert table.pending_count == 2  # requeued + the never-leased cell
        assert table.leased_count == 1

    def test_revoking_a_worker_twice_is_a_no_op(self, clock):
        table = CellLeaseTable(total=1, clock=clock)
        table.lease("w1", 10.0)
        assert len(table.revoke_worker("w1")) == 1
        assert table.revoke_worker("w1") == []
        assert table.pending_count == 1

    def test_forget_requeues_without_completing(self, clock):
        table = CellLeaseTable(total=1, clock=clock)
        lease = table.lease("w1", 10.0)
        table.forget(lease.lease_id)
        assert table.pending_count == 1
        assert table.done_count == 0
        table.forget(999)  # unknown ids are ignored (job already failed)


class TestScheduling:
    def test_mark_done_covers_resume_and_cache_hits(self, clock):
        table = CellLeaseTable(total=3, clock=clock)
        table.mark_done(1)
        assert table.lease("w1", 10.0).cell == 0
        assert table.lease("w1", 10.0).cell == 2
        with pytest.raises(ServiceError, match="out of range"):
            table.mark_done(7)

    def test_skip_excludes_a_cell_from_the_schedule(self, clock):
        table = CellLeaseTable(total=3, clock=clock)
        assert table.skip(2)
        assert not table.skip(2)  # already gone
        assert table.lease("w1", 10.0).cell == 0
        assert table.lease("w1", 10.0).cell == 1
        assert table.lease("w1", 10.0) is None
        # Skipped cells count as neither pending nor done: the job can
        # finish with done_count < total (the max_cells contract).
        assert table.pending_count == 0
        assert table.done_count == 0
        assert not table.finished

    def test_drain_stops_a_failed_job(self, clock):
        table = CellLeaseTable(total=5, clock=clock)
        table.lease("w1", 10.0)
        assert table.drain() == 4
        assert table.pending_count == 0
        assert table.lease("w2", 10.0) is None


class TestQuarantine:
    def test_failures_under_the_threshold_requeue(self, clock):
        table = CellLeaseTable(total=1, clock=clock, max_attempts=3)
        for attempt in (1, 2):
            lease = table.lease("w1", 10.0)
            table.forget(lease.lease_id)
            assert table.record_failure(lease.cell, "boom") == "requeued"
            assert table.attempts(lease.cell) == attempt
        assert table.pending_count == 1
        assert table.quarantined_count == 0

    def test_kth_failure_quarantines_with_the_reason(self, clock):
        table = CellLeaseTable(total=2, clock=clock, max_attempts=2)
        table.record_failure(0, "first")
        assert table.record_failure(0, "second") == "quarantined"
        assert table.quarantined == {0: "second"}
        assert table.attempts(0) == 2
        # The quarantined cell leaves the schedule; the healthy one stays.
        assert table.pending_count == 1
        assert table.lease("w1", 10.0).cell == 1

    def test_done_and_quarantined_cells_are_stale(self, clock):
        table = CellLeaseTable(total=2, clock=clock, max_attempts=1)
        lease = table.lease("w1", 10.0)
        table.complete(lease.lease_id)
        assert table.record_failure(lease.cell, "late") == "stale"
        assert table.record_failure(1, "boom") == "quarantined"
        assert table.record_failure(1, "again") == "stale"
        assert table.attempts(1) == 1  # stale failures are not counted

    def test_zero_max_attempts_disables_quarantine(self, clock):
        table = CellLeaseTable(total=1, clock=clock)
        for _ in range(10):
            assert table.record_failure(0, "boom") == "requeued"
        assert table.quarantined_count == 0

    def test_late_record_for_a_quarantined_cell_is_dropped(self, clock):
        # The quarantine wrote a cell-error store line; a slow-but-alive
        # worker's late success must not double-record the cell.
        table = CellLeaseTable(total=1, clock=clock, max_attempts=1)
        slow = table.lease("w1", timeout=1.0)
        clock.advance(2.0)
        table.expire()
        table.record_failure(slow.cell, "presumed dead")
        assert table.complete(slow.lease_id) is None
        assert table.done_count == 0
        assert table.quarantined_count == 1

    def test_revoked_quarantined_cell_never_requeues(self, clock):
        table = CellLeaseTable(total=1, clock=clock, max_attempts=1)
        lease = table.lease("w1", 10.0)
        table.record_failure(lease.cell, "worker died")
        table.revoke_worker("w1")
        assert table.pending_count == 0
        assert table.lease("w2", 10.0) is None

    def test_finished_requires_every_cell_done_not_quarantined(self, clock):
        table = CellLeaseTable(total=1, clock=clock, max_attempts=1)
        table.record_failure(0, "boom")
        assert not table.finished  # the writer records the error line
        assert table.pending_count == 0 and table.leased_count == 0

    def test_negative_max_attempts_is_refused(self, clock):
        with pytest.raises(ServiceError, match="max_attempts"):
            CellLeaseTable(total=1, clock=clock, max_attempts=-1)
