"""End-to-end fleet behaviour: byte-identity, warmth, and fault paths.

Every test here runs a real dispatcher with real (subprocess) workers
and holds the service to its core contract: the JSONL store a fleet job
produces is byte-for-byte the file a serial ``run_sweep`` writes — under
out-of-order completion, worker death, lease expiry, eviction, restart
and resume.
"""

from __future__ import annotations

import filecmp
import os
import signal
import time

import pytest

from repro.api.specs import AlgorithmSpec, SweepSpec, WorkloadSpec
from repro.api.store import ResultCache, load_sweep, run_sweep
from repro.errors import ServiceError
from repro.service import Dispatcher, ServiceClient
from repro.service.protocol import recv_frame, send_frame

# "fleet-test-only-probe" (used by the failure-path tests below) is
# registered by the session-scoped conftest fixture: it resolves in the
# test/dispatcher process but never in the workers.


def wait_for(predicate, timeout=20.0, poll=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    raise AssertionError(f"timed out waiting for {message}")


class TestByteIdentity:
    def test_fleet_store_matches_serial_bytes(
        self, fleet, tmp_path, probe_spec, serial_store
    ):
        spec = probe_spec()
        serial = serial_store(spec, tmp_path / "serial.jsonl")
        out = tmp_path / "fleet.jsonl"
        with ServiceClient.connect(fleet.root) as client:
            job = client.submit(spec.to_dict(), out=out)
            job = client.wait_job(job["id"], timeout=60)
        assert job["state"] == "done"
        assert job["cells_done"] == job["cells_total"] == 6
        assert job["plane"] == "shm"
        assert job["first_record_seconds"] is not None
        assert job["cells_per_second"] > 0
        assert filecmp.cmp(serial, out, shallow=False)

    def test_pickle_plane_fleet_matches_serial_bytes(
        self, service_root, tmp_path, probe_spec, serial_store, probe_preload
    ):
        spec = probe_spec(seeds=(1, 2))
        serial = serial_store(spec, tmp_path / "serial.jsonl")
        out = tmp_path / "fleet.jsonl"
        with Dispatcher(
            service_root, workers=1, preload=probe_preload, plane="pickle"
        ) as dispatcher:
            with ServiceClient.connect(dispatcher.root) as client:
                job = client.submit(spec.to_dict(), out=out)
                job = client.wait_job(job["id"], timeout=60)
        assert job["state"] == "done"
        assert job["plane"] == "pickle"
        assert filecmp.cmp(serial, out, shallow=False)

    def test_second_job_reuses_warm_workers_and_segments(
        self, fleet, tmp_path, probe_spec, serial_store
    ):
        spec = probe_spec(seeds=(1, 2))
        serial = serial_store(spec, tmp_path / "serial.jsonl")
        with ServiceClient.connect(fleet.root) as client:
            job = client.submit(spec.to_dict(), out=tmp_path / "first.jsonl")
            client.wait_job(job["id"], timeout=60)
            pids_before = {w["pid"] for w in client.status()["workers"]}
            built_before = client.status()["segments"]["built"]
            job = client.submit(spec.to_dict(), out=tmp_path / "second.jsonl")
            client.wait_job(job["id"], timeout=60)
            status = client.status()
        # Same processes served both jobs; the second built nothing new.
        assert {w["pid"] for w in status["workers"]} == pids_before
        assert status["segments"]["built"] == built_before
        assert status["segments"]["reused"] > 0
        assert filecmp.cmp(serial, tmp_path / "first.jsonl", shallow=False)
        assert filecmp.cmp(serial, tmp_path / "second.jsonl", shallow=False)

    def test_cache_hits_skip_execution(
        self, fleet, tmp_path, probe_spec, serial_store
    ):
        spec = probe_spec(seeds=(1, 2))
        serial = serial_store(spec, tmp_path / "serial.jsonl")
        cache_dir = tmp_path / "cache"
        with ServiceClient.connect(fleet.root) as client:
            job = client.submit(
                spec.to_dict(), out=tmp_path / "first.jsonl", cache=cache_dir
            )
            job = client.wait_job(job["id"], timeout=60)
            assert job["cache_hits"] == 0
            job = client.submit(
                spec.to_dict(), out=tmp_path / "second.jsonl", cache=cache_dir
            )
            job = client.wait_job(job["id"], timeout=60)
        assert job["state"] == "done"
        assert job["cache_hits"] == job["cells_total"]
        assert job["executed"] == 0
        assert filecmp.cmp(serial, tmp_path / "second.jsonl", shallow=False)
        assert ResultCache(cache_dir).stats()["entries"] == job["cells_total"]

    def test_max_cells_prefix_matches_serial(
        self, fleet, tmp_path, probe_spec
    ):
        spec = probe_spec(seeds=(1, 2))
        serial_partial = tmp_path / "serial.jsonl"
        run_sweep(spec, serial_partial, max_cells=3)
        out = tmp_path / "fleet.jsonl"
        with ServiceClient.connect(fleet.root) as client:
            job = client.submit(spec.to_dict(), out=out, max_cells=3)
            job = client.wait_job(job["id"], timeout=60)
        assert job["state"] == "done"
        assert job["cells_done"] == 3
        assert job["cells_skipped"] == 1
        assert filecmp.cmp(serial_partial, out, shallow=False)


class TestFaultPaths:
    def test_worker_killed_mid_cell_requeues_without_duplicates(
        self, service_root, tmp_path, probe_spec, serial_store, probe_preload
    ):
        spec = probe_spec(seeds=(1, 2), slow_seconds=1.0)
        serial = serial_store(spec, tmp_path / "serial.jsonl")
        out = tmp_path / "fleet.jsonl"
        with Dispatcher(
            service_root,
            workers=2,
            preload=probe_preload,
            heartbeat_interval=0.3,
            lease_timeout=30.0,
        ) as dispatcher:
            with ServiceClient.connect(dispatcher.root) as client:
                job = client.submit(spec.to_dict(), out=out)

                def executing_pid():
                    for worker in client.status()["workers"]:
                        if worker["lease"] is not None and worker["pid"]:
                            return worker["pid"]
                    return None

                pid = wait_for(executing_pid, message="a worker holding a lease")
                os.kill(pid, signal.SIGKILL)
                job = client.wait_job(job["id"], timeout=90)
        assert job["state"] == "done"
        assert job["cells_done"] == job["cells_total"]
        # Exactly-once recording: the store parses (no duplicate cells)
        # and is byte-identical to the serial ground truth.
        assert len(load_sweep(out).entries) == job["cells_total"]
        assert filecmp.cmp(serial, out, shallow=False)

    def test_stale_heartbeat_worker_is_evicted(
        self, service_root, tmp_path, probe_spec, serial_store, probe_preload
    ):
        spec = probe_spec(seeds=(1,), slow_seconds=2.0)
        serial = serial_store(spec, tmp_path / "serial.jsonl")
        out = tmp_path / "fleet.jsonl"
        stopped = None
        dispatcher = Dispatcher(
            service_root,
            workers=2,
            preload=probe_preload,
            heartbeat_interval=0.2,
            heartbeat_timeout=0.8,
            lease_timeout=120.0,  # only eviction may requeue in this test
        )
        dispatcher.start()
        try:
            with ServiceClient.connect(dispatcher.root) as client:
                job = client.submit(spec.to_dict(), out=out)

                def executing():
                    for worker in client.status()["workers"]:
                        if worker["lease"] is not None and worker["pid"]:
                            return worker
                    return None

                victim = wait_for(executing, message="a worker holding a lease")
                stopped = victim["pid"]
                os.kill(stopped, signal.SIGSTOP)
                job = client.wait_job(job["id"], timeout=90)
                status = client.status()
            assert job["state"] == "done"
            assert status["service"]["evictions"] >= 1
            assert all(
                worker["id"] != victim["id"] for worker in status["workers"]
            )
            assert filecmp.cmp(serial, out, shallow=False)
        finally:
            if stopped is not None:
                try:
                    os.kill(stopped, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            dispatcher.stop()

    def test_expired_lease_requeues_and_late_duplicate_is_dropped(
        self, service_root, tmp_path, serial_store, probe_preload
    ):
        # One slow cell, a lease far shorter than the cell: the first
        # worker's lease expires and the cell is re-leased while the
        # first worker is still (alive and) computing.  Both eventually
        # deliver; exactly one record lands.
        spec = SweepSpec(
            experiment="fleet-test",
            algorithms=(
                AlgorithmSpec(
                    "service-probe", {"scale": 1, "sleep_seconds": 1.5}
                ),
            ),
            workload=WorkloadSpec(
                "gnp", {"num_nodes": 20, "edge_probability": 0.3}
            ),
            seeds=(5,),
        )
        serial = serial_store(spec, tmp_path / "serial.jsonl")
        out = tmp_path / "fleet.jsonl"
        with Dispatcher(
            service_root,
            workers=2,
            preload=probe_preload,
            heartbeat_interval=0.2,
            lease_timeout=0.5,
        ) as dispatcher:
            with ServiceClient.connect(dispatcher.root) as client:
                job = client.submit(spec.to_dict(), out=out)
                job = client.wait_job(job["id"], timeout=90)
                # Give the second copy of the record time to arrive (and
                # be dropped) before tearing the fleet down.
                time.sleep(1.0)
                job = client.job_status(job["id"])
        assert job["state"] == "done"
        assert job["expired_leases"] >= 1
        assert job["cells_done"] == 1
        assert len(load_sweep(out).entries) == 1
        assert filecmp.cmp(serial, out, shallow=False)

    def test_dispatcher_restart_resumes_partial_store(
        self, service_root, tmp_path, probe_spec, serial_store, probe_preload
    ):
        spec = probe_spec(seeds=(1, 2))
        serial = serial_store(spec, tmp_path / "serial.jsonl")
        out = tmp_path / "fleet.jsonl"
        with Dispatcher(
            service_root, workers=1, preload=probe_preload
        ) as dispatcher:
            with ServiceClient.connect(dispatcher.root) as client:
                job = client.submit(spec.to_dict(), out=out, max_cells=2)
                job = client.wait_job(job["id"], timeout=60)
        assert job["cells_done"] == 2
        # A brand-new dispatcher (fresh process state, same root) picks the
        # partial store up exactly where the first left it.
        with Dispatcher(
            service_root, workers=1, preload=probe_preload
        ) as dispatcher:
            with ServiceClient.connect(dispatcher.root) as client:
                job = client.submit(spec.to_dict(), out=out, resume=True)
                job = client.wait_job(job["id"], timeout=60)
        assert job["state"] == "done"
        assert job["cells_resumed"] == 2
        assert job["cells_done"] == job["cells_total"]
        assert filecmp.cmp(serial, out, shallow=False)

    def test_failing_cell_is_quarantined_and_the_store_completes(
        self, fleet, tmp_path
    ):
        """A cell that fails in every worker is quarantined after K tries.

        ``fleet-test-only-probe`` resolves in the dispatcher but not in
        the workers, so each of its cells fails every attempt.  Under
        quarantine the job still finishes: each poison cell is retried
        exactly ``max_cell_attempts`` times, then recorded as a
        cell-error line holding its position in the store.
        """
        spec = SweepSpec(
            experiment="fleet-test",
            algorithms=(AlgorithmSpec("fleet-test-only-probe"),),
            workload=WorkloadSpec(
                "gnp", {"num_nodes": 20, "edge_probability": 0.3}
            ),
            seeds=(1, 2),
        )
        out = tmp_path / "fleet.jsonl"
        with ServiceClient.connect(fleet.root) as client:
            job = client.submit(spec.to_dict(), out=out)
            job = client.wait_job(job["id"], timeout=60)
        assert job["state"] == "done"
        assert job["quarantined"] == job["cells_total"] == 2
        for entry in job["quarantined_cells"]:
            assert entry["attempts"] == 3  # the dispatcher default K
            assert "fleet-test-only-probe" in entry["reason"]
        # The store parses and is complete: every cell holds either a
        # record or a cell-error line, in order.
        stored = load_sweep(out)
        assert len(stored.entries) == 0
        assert stored.error_cells() == {0, 1}


class TestControlPlane:
    def test_two_jobs_must_not_share_one_store(
        self, fleet, tmp_path, probe_spec
    ):
        spec = probe_spec(seeds=(1,), slow_seconds=1.0)
        out = tmp_path / "fleet.jsonl"
        with ServiceClient.connect(fleet.root) as client:
            job = client.submit(spec.to_dict(), out=out)
            with pytest.raises(ServiceError, match="must not share"):
                client.submit(spec.to_dict(), out=out)
            client.wait_job(job["id"], timeout=60)

    def test_existing_store_without_resume_is_refused(
        self, fleet, tmp_path, probe_spec
    ):
        spec = probe_spec(seeds=(1,))
        out = tmp_path / "fleet.jsonl"
        out.write_text("occupied", encoding="utf-8")
        with ServiceClient.connect(fleet.root) as client:
            with pytest.raises(ServiceError, match="already exists"):
                client.submit(spec.to_dict(), out=out)

    def test_unknown_job_is_an_error(self, fleet):
        with ServiceClient.connect(fleet.root) as client:
            with pytest.raises(ServiceError, match="no such job"):
                client.job_status("job-999")

    def test_run_spec_submission_is_refused(self, fleet, tmp_path):
        with ServiceClient.connect(fleet.root) as client:
            with pytest.raises(ServiceError):
                client.submit(
                    {"kind": "run", "seed": 1}, out=tmp_path / "x.jsonl"
                )

    def test_protocol_version_mismatch_is_rejected(self, fleet):
        sock = fleet.address.connect(timeout=5.0)
        try:
            send_frame(
                sock,
                {"type": "hello", "role": "client", "pid": 1, "protocol": 99},
            )
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert "version mismatch" in reply["error"]
        finally:
            sock.close()

    def test_status_document_shape(self, fleet):
        with ServiceClient.connect(fleet.root) as client:
            status = client.status()
        service = status["service"]
        assert service["protocol"] == 1
        assert service["plane"] == "auto"
        assert service["managed_workers"] == 2
        assert {"workers", "jobs", "segments"} <= set(status)
        assert {"active", "idle", "bytes", "built", "reused"} == set(
            status["segments"]
        )

    def test_shutdown_request_stops_the_dispatcher(self, service_root):
        dispatcher = Dispatcher(service_root, workers=0)
        dispatcher.start()
        try:
            with ServiceClient.connect(service_root) as client:
                assert client.shutdown()["type"] == "ok"
            assert dispatcher.wait(timeout=10.0)
        finally:
            dispatcher.stop()
        assert not (service_root / "service.json").exists()
