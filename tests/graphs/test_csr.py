"""CSR substrate: invariants and differential tests against the reference.

The vectorized oracle (:mod:`repro.graphs.csr`) must be *observationally
identical* to the pure-Python set-intersection reference
(:func:`repro.graphs.triangles.iter_triangles_reference` and friends) on
every workload family the generators produce.  These tests enumerate that
equivalence — triangles, counts, per-edge supports, the heavy/light
partition, and ``∆(X)`` membership — on random G(n, p) (dense and sparse),
Barabási–Albert, random-regular and lollipop graphs, on both oracle
strategies (dense bitset and sorted-merge).
"""

import numpy as np
import pytest

import repro.graphs.csr as csr_module
from repro.graphs import (
    CSRGraph,
    Graph,
    barabasi_albert_graph,
    count_triangles,
    delta_set_membership,
    edge_support,
    gnp_random_graph,
    heaviness_threshold,
    heavy_triangles,
    is_triangle_free,
    iter_triangles_reference,
    light_triangles,
    list_triangles,
    local_triangle_count,
    lollipop_graph,
    random_regular_graph,
    triangle_free_bipartite,
    triangles_through_node,
    union_of_cliques,
)


def workload_graphs():
    """The differential-test corpus: one graph per workload family."""
    return [
        ("gnp-dense", gnp_random_graph(40, 0.5, seed=11)),
        ("gnp-sparse", gnp_random_graph(80, 0.05, seed=12)),
        ("barabasi-albert", barabasi_albert_graph(60, 3, seed=13)),
        ("random-regular", random_regular_graph(40, 4, seed=14)),
        ("lollipop", lollipop_graph(10, 12)),
        ("union-of-cliques", union_of_cliques([5, 4, 3, 2])),
        ("bipartite", triangle_free_bipartite(30, 0.4, seed=15)),
        ("empty", Graph(7)),
    ]


WORKLOADS = workload_graphs()
WORKLOAD_IDS = [name for name, _ in WORKLOADS]


@pytest.fixture(params=[False, True], ids=["dense-path", "merge-path"])
def strategy_toggle(request, monkeypatch):
    """Run each differential test on both oracle strategies."""
    if request.param:
        monkeypatch.setattr(csr_module, "DENSE_ADJACENCY_MAX_BYTES", 0)
    return request.param


def fresh_view(graph: Graph) -> CSRGraph:
    """A snapshot built under the current strategy toggle (bypass the cache,
    which may hold a view built under the other strategy)."""
    return CSRGraph.from_graph(graph)


class TestDifferentialOracle:
    @pytest.mark.parametrize("name,graph", WORKLOADS, ids=WORKLOAD_IDS)
    def test_triangles_match_reference(self, name, graph, strategy_toggle):
        expected = list(iter_triangles_reference(graph))
        view = fresh_view(graph)
        assert [tuple(row) for row in view.triangles().tolist()] == expected
        assert view.count_triangles() == len(expected)
        assert view.has_triangle() == bool(expected)

    @pytest.mark.parametrize("name,graph", WORKLOADS, ids=WORKLOAD_IDS)
    def test_edge_support_matches_reference(self, name, graph, strategy_toggle):
        view = fresh_view(graph)
        supports = view.edge_support()
        assert supports.shape[0] == graph.num_edges
        for u, v, support in zip(
            view.edge_u.tolist(), view.edge_v.tolist(), supports.tolist()
        ):
            assert support == len(graph.neighbors(u) & graph.neighbors(v))

    @pytest.mark.parametrize("name,graph", WORKLOADS, ids=WORKLOAD_IDS)
    def test_heavy_light_split_matches_reference(self, name, graph, strategy_toggle):
        epsilon = 0.3
        threshold = heaviness_threshold(graph.num_nodes, epsilon)
        reference_heavy = []
        reference_light = []
        for a, b, c in iter_triangles_reference(graph):
            supports = [
                len(graph.neighbors(u) & graph.neighbors(v))
                for u, v in ((a, b), (a, c), (b, c))
            ]
            if max(supports) >= threshold:
                reference_heavy.append((a, b, c))
            else:
                reference_light.append((a, b, c))
        view = fresh_view(graph)
        triangles, mask = view.heavy_triangle_mask(threshold)
        got_heavy = [tuple(row) for row in triangles[mask].tolist()]
        got_light = [tuple(row) for row in triangles[~mask].tolist()]
        assert got_heavy == reference_heavy
        assert got_light == reference_light

    @pytest.mark.parametrize("name,graph", WORKLOADS, ids=WORKLOAD_IDS)
    def test_delta_membership_matches_reference(self, name, graph, strategy_toggle):
        rng = np.random.default_rng(99)
        landmarks = [
            int(x)
            for x in rng.choice(
                max(graph.num_nodes, 1),
                size=min(5, graph.num_nodes),
                replace=False,
            )
        ] if graph.num_nodes else []
        landmark_set = set(landmarks)
        reference = {
            (u, v)
            for u, v in graph.edges()
            if not (graph.common_neighbors(u, v) & landmark_set)
        }
        view = fresh_view(graph)
        mask = view.delta_edge_mask(landmarks)
        got = {
            (u, v)
            for u, v in zip(view.edge_u[mask].tolist(), view.edge_v[mask].tolist())
        }
        assert got == reference
        # Out-of-range landmark ids are ignored (they can never be a common
        # neighbour), matching pair_in_delta's behaviour.
        lenient = view.delta_edge_mask(list(landmarks) + [graph.num_nodes + 5, -3])
        assert lenient.tolist() == mask.tolist()

    @pytest.mark.parametrize("name,graph", WORKLOADS, ids=WORKLOAD_IDS)
    def test_local_counts_and_through_node(self, name, graph, strategy_toggle):
        reference = {node: 0 for node in graph.nodes()}
        for a, b, c in iter_triangles_reference(graph):
            reference[a] += 1
            reference[b] += 1
            reference[c] += 1
        view = fresh_view(graph)
        assert dict(enumerate(view.local_triangle_counts().tolist())) == reference
        probe = max(graph.nodes(), key=graph.degree, default=None)
        if probe is not None:
            through = [tuple(row) for row in view.triangles_through(probe).tolist()]
            expected = sorted(
                t for t in iter_triangles_reference(graph) if probe in t
            )
            assert through == expected


class TestTriangleEnumerationCaching:
    def test_triangles_cached_per_snapshot(self, strategy_toggle):
        view = fresh_view(gnp_random_graph(30, 0.4, seed=21))
        first = view.triangles()
        assert view.triangles() is first
        with pytest.raises(ValueError):
            first[0, 0] = -1

    def test_chunks_match_full_array(self, strategy_toggle):
        view = fresh_view(barabasi_albert_graph(40, 3, seed=22))
        chunks = list(view.iter_triangle_chunks())
        stacked = (
            np.concatenate(chunks, axis=0)
            if chunks
            else np.empty((0, 3), dtype=np.int64)
        )
        assert stacked.tolist() == view.triangles().tolist()

    def test_iter_triangles_is_lazy(self):
        from repro.graphs import iter_triangles

        graph = gnp_random_graph(60, 0.5, seed=23)
        first = next(iter(iter_triangles(graph)))
        # Early exit must not have materialised the full triangle cache.
        assert graph.csr()._triangles is None
        assert first == next(iter(iter_triangles_reference(graph)))

    def test_heavy_and_light_share_one_enumeration(self):
        graph = union_of_cliques([6, 3, 3])
        heavy = heavy_triangles(graph, 0.5)
        light = light_triangles(graph, 0.5)
        assert graph.csr()._triangles is not None
        assert sorted(heavy + light) == list_triangles(graph)


class TestPublicOracleAPI:
    """The triangles-module functions ride on the graph's cached CSR view."""

    def test_api_functions_agree_with_reference(self):
        graph = barabasi_albert_graph(50, 4, seed=3)
        expected = list(iter_triangles_reference(graph))
        assert list_triangles(graph) == expected
        assert count_triangles(graph) == len(expected)
        assert not is_triangle_free(graph)
        supports = edge_support(graph)
        assert supports[next(iter(supports))] == len(
            graph.neighbors(next(iter(supports))[0])
            & graph.neighbors(next(iter(supports))[1])
        )
        assert set(heavy_triangles(graph, 0.2)) | set(light_triangles(graph, 0.2)) == set(
            expected
        )
        counts = local_triangle_count(graph)
        assert sum(counts.values()) == 3 * len(expected)
        probe = max(graph.nodes(), key=graph.degree)
        assert triangles_through_node(graph, probe) == sorted(
            t for t in expected if probe in t
        )
        assert delta_set_membership(graph, []) == set(graph.edges())

    def test_returns_python_ints(self):
        graph = gnp_random_graph(20, 0.4, seed=5)
        for triangle in list_triangles(graph):
            assert all(type(x) is int for x in triangle)
        for (u, v), support in edge_support(graph).items():
            assert type(u) is int and type(v) is int and type(support) is int


class TestCSRInvariants:
    def test_lazily_built_and_cached(self):
        graph = gnp_random_graph(25, 0.3, seed=1)
        view = graph.csr()
        assert graph.csr() is view

    def test_mutation_invalidates_view(self):
        graph = Graph(6, [(0, 1), (1, 2)])
        before = graph.csr()
        assert before.num_edges == 2
        graph.add_edge(2, 3)
        after = graph.csr()
        assert after is not before
        assert after.num_edges == 3
        # The old snapshot still describes the pre-mutation graph.
        assert before.num_edges == 2
        graph.remove_edge(0, 1)
        assert graph.csr().num_edges == 2

    def test_arrays_are_immutable(self):
        view = gnp_random_graph(15, 0.4, seed=2).csr()
        for array in (view.indptr, view.indices, view.edge_u, view.edge_v):
            with pytest.raises(ValueError):
                array[0] = 0
        with pytest.raises(ValueError):
            view.edge_support()[0] = 99

    def test_neighbor_rows_sorted_strictly_increasing(self):
        view = barabasi_albert_graph(40, 3, seed=8).csr()
        for node in range(view.num_nodes):
            row = view.neighbor_slice(node)
            assert (np.diff(row) > 0).all()

    def test_canonical_edge_order(self):
        view = gnp_random_graph(30, 0.3, seed=9).csr()
        assert (view.edge_u < view.edge_v).all()
        keys = view.edge_u * view.num_nodes + view.edge_v
        assert (np.diff(keys) > 0).all()

    def test_degrees_and_membership(self):
        graph = random_regular_graph(20, 4, seed=10)
        view = graph.csr()
        assert (view.degrees == 4).all()
        assert view.max_degree() == 4
        for u, v in list(graph.edges())[:10]:
            assert view.has_edge(u, v) and view.has_edge(v, u)
        assert not view.has_edge(0, 0)

    def test_copy_shares_snapshot_until_mutation(self):
        graph = gnp_random_graph(18, 0.4, seed=6)
        view = graph.csr()
        clone = graph.copy()
        assert clone.csr() is view
        clone.add_edge(*next(
            (u, v)
            for u in range(18)
            for v in range(u + 1, 18)
            if not graph.has_edge(u, v)
        ))
        assert clone.csr() is not view
        assert graph.csr() is view


class TestBulkBuilder:
    def test_from_edge_arrays_equals_incremental(self):
        edges = [(0, 3), (3, 1), (1, 0), (2, 4)]
        incremental = Graph(5, edges)
        u = np.array([e[0] for e in edges])
        v = np.array([e[1] for e in edges])
        assert Graph.from_edge_arrays(5, u, v) == incremental

    def test_deduplicates_and_canonicalises(self):
        graph = Graph.from_edge_arrays(4, [1, 0, 1], [0, 1, 2])
        assert graph.num_edges == 2
        assert graph.edge_list() == [(0, 1), (1, 2)]

    def test_rejects_self_loops_and_out_of_range(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            Graph.from_edge_arrays(4, [1], [1])
        with pytest.raises(GraphError):
            Graph.from_edge_arrays(4, [0], [4])
        with pytest.raises(GraphError):
            Graph.from_edge_arrays(4, [-1], [2])

    def test_prebuilds_csr_cache(self):
        graph = Graph.from_edge_arrays(6, [0, 2], [1, 3])
        assert graph._csr_cache is not None
        assert graph.csr().num_edges == 2


class TestBulkEdgeMembership:
    def test_has_edges_matches_scalar_oracle(self):
        graph = gnp_random_graph(50, 0.2, seed=1)
        csr = graph.csr()
        rng = np.random.default_rng(5)
        u = rng.integers(0, 50, size=400)
        v = rng.integers(0, 50, size=400)
        expected = np.array(
            [csr.has_edge(int(a), int(b)) for a, b in zip(u, v)]
        )
        assert np.array_equal(csr.has_edges(u, v), expected)

    def test_has_edges_sparse_path_matches_dense(self):
        # Force the sorted-key search branch by shrinking the dense budget.
        from repro.graphs import csr as csr_module

        graph = gnp_random_graph(60, 0.15, seed=2)
        dense_view = graph.csr()
        rng = np.random.default_rng(6)
        u = rng.integers(0, 60, size=300)
        v = rng.integers(0, 60, size=300)
        dense_answer = dense_view.has_edges(u, v)
        sparse_view = graph.copy().csr()
        original = csr_module.DENSE_ADJACENCY_MAX_BYTES
        csr_module.DENSE_ADJACENCY_MAX_BYTES = 0
        try:
            assert not sparse_view._use_dense()
            assert np.array_equal(sparse_view.has_edges(u, v), dense_answer)
        finally:
            csr_module.DENSE_ADJACENCY_MAX_BYTES = original

    def test_self_pairs_are_false(self):
        csr = gnp_random_graph(6, 1.0, seed=0).csr()
        nodes = np.arange(6)
        assert not csr.has_edges(nodes, nodes).any()


class TestTrianglesByGroup:
    def _reference(self, group, u, v, num_nodes):
        from repro.types import decode_triangle_keys

        expected = set()
        for g in np.unique(group).tolist():
            member = group == g
            uu = np.minimum(u[member], v[member])
            vv = np.maximum(u[member], v[member])
            keys = np.unique(uu * num_nodes + vv)
            eu, ev = keys // num_nodes, keys % num_nodes
            vertices = np.unique(np.concatenate((eu, ev)))
            local = CSRGraph.from_edge_arrays(
                int(vertices.shape[0]),
                np.searchsorted(vertices, eu),
                np.searchsorted(vertices, ev),
            )
            for row in local.triangles():
                expected.add(
                    (g, int(vertices[row[0]]), int(vertices[row[1]]), int(vertices[row[2]]))
                )
        return expected

    def _listed(self, group, u, v, num_nodes):
        from repro.graphs.csr import triangles_by_group
        from repro.types import decode_triangle_keys

        tri_group, tri_keys = triangles_by_group(group, u, v, num_nodes)
        assert np.all(tri_group[:-1] <= tri_group[1:])
        a, b, c = decode_triangle_keys(tri_keys, num_nodes)
        return set(zip(tri_group.tolist(), a.tolist(), b.tolist(), c.tolist()))

    def _random_instance(self, rng, num_nodes):
        groups = []
        us = []
        vs = []
        for g in sorted(rng.integers(0, 5, size=int(rng.integers(1, 5))).tolist()):
            k = int(rng.integers(1, 80))
            a = rng.integers(0, num_nodes, size=k)
            b = rng.integers(0, num_nodes, size=k)
            keep = a != b
            groups.extend([g] * int(keep.sum()))
            us.append(a[keep])
            vs.append(b[keep])
        return (
            np.asarray(groups, dtype=np.int64),
            np.concatenate(us) if us else np.empty(0, dtype=np.int64),
            np.concatenate(vs) if vs else np.empty(0, dtype=np.int64),
        )

    def test_differential_against_per_group_oracle(self):
        rng = np.random.default_rng(12)
        for _ in range(15):
            num_nodes = int(rng.integers(5, 40))
            group, u, v = self._random_instance(rng, num_nodes)
            assert self._listed(group, u, v, num_nodes) == self._reference(
                group, u, v, num_nodes
            )

    def test_compact_fallback_matches_dense_scratch(self):
        from repro.graphs import csr as csr_module

        rng = np.random.default_rng(13)
        num_nodes = 60
        group, u, v = self._random_instance(rng, num_nodes)
        dense = self._listed(group, u, v, num_nodes)
        original = csr_module.GROUPED_DENSE_MAX_NODES
        csr_module.GROUPED_DENSE_MAX_NODES = 0
        try:
            compact = self._listed(group, u, v, num_nodes)
        finally:
            csr_module.GROUPED_DENSE_MAX_NODES = original
        assert compact == dense

    def test_rejects_self_loops(self):
        from repro.graphs.csr import triangles_by_group

        with pytest.raises(ValueError):
            triangles_by_group(
                np.array([0]), np.array([2]), np.array([2]), num_nodes=4
            )

    def test_empty_input(self):
        from repro.graphs.csr import triangles_by_group

        empty = np.empty(0, dtype=np.int64)
        tri_group, tri_keys = triangles_by_group(empty, empty, empty, 5)
        assert tri_group.shape[0] == 0
        assert tri_keys.shape[0] == 0


class TestDenseCrossover:
    """The dense-oracle strategy must weigh fill, not just the byte cap.

    A 10k-node sparse graph's bool matrix (100 MB) squeezes under
    ``DENSE_ADJACENCY_MAX_BYTES``, but building O(n²) state for a graph
    with ~1 edge per thousand slots is strictly worse than the sorted-merge
    membership path — the regression that motivated the density floor."""

    def _sparse_10k(self):
        # A 10 000-node path plus one chord: 10 000 edges, one triangle.
        edges = [(i, i + 1) for i in range(9_999)] + [(0, 2)]
        return Graph(10_000, edges).csr()

    def test_sparse_10k_stays_on_merge_path(self):
        csr = self._sparse_10k()
        assert csr.num_nodes * csr.num_nodes <= csr_module.DENSE_ADJACENCY_MAX_BYTES
        assert csr._use_dense() is False
        hits = csr.has_edges(
            np.array([0, 0, 5, 9_998], dtype=np.int64),
            np.array([2, 3, 500, 9_999], dtype=np.int64),
        )
        assert hits.tolist() == [True, False, False, True]
        # No dense state was materialised along the way.
        assert csr._dense_bool is None
        assert csr._dense_packed is None
        assert csr.edge_support().sum() == 3  # the single triangle's edges
        assert csr._dense_bool is None

    def test_dense_fill_floor_scales_with_size(self):
        # Same byte budget, adequate fill: a small dense graph still takes
        # the dense path.
        dense = gnp_random_graph(64, 0.5, seed=1).csr()
        assert dense._use_dense() is True
        # An equally small but near-empty graph does not.
        sparse = Graph(64, [(0, 1), (2, 3)]).csr()
        assert sparse._use_dense() is False
