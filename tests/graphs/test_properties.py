"""Property-based tests (hypothesis) for the graph substrate."""

import math

from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    count_triangles,
    edge_support,
    from_edge_list_string,
    gnp_random_graph,
    heavy_triangles,
    light_triangles,
    list_triangles,
    local_triangle_count,
    rivin_edge_lower_bound,
    to_edge_list_string,
    triangles_through_node,
)
from repro.types import triangle_edges


@st.composite
def small_graphs(draw) -> Graph:
    """Random simple graphs on up to 12 vertices."""
    num_nodes = draw(st.integers(min_value=1, max_value=12))
    possible_edges = [
        (u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)
    ]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), max_size=len(possible_edges))
        if possible_edges
        else st.just([])
    )
    return Graph(num_nodes, edges)


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_every_listed_triangle_has_its_three_edges(graph: Graph):
    for triangle in list_triangles(graph):
        for u, v in triangle_edges(triangle):
            assert graph.has_edge(u, v)


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_triangle_count_equals_trace_formula(graph: Graph):
    # Each triangle has exactly three vertices, so summing per-node counts
    # triple-counts the triangles.
    per_node = local_triangle_count(graph)
    assert sum(per_node.values()) == 3 * count_triangles(graph)


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_edge_support_sums_to_three_times_triangles(graph: Graph):
    supports = edge_support(graph)
    assert sum(supports.values()) == 3 * count_triangles(graph)


@given(small_graphs(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_heavy_light_partition(graph: Graph, epsilon: float):
    heavy = set(heavy_triangles(graph, epsilon))
    light = set(light_triangles(graph, epsilon))
    assert heavy | light == set(list_triangles(graph))
    assert not (heavy & light)


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_triangles_through_node_consistent_with_global_listing(graph: Graph):
    triangles = set(list_triangles(graph))
    for node in graph.nodes():
        through = set(triangles_through_node(graph, node))
        assert through == {t for t in triangles if node in t}


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_rivin_bound_never_violated(graph: Graph):
    assert graph.num_edges >= rivin_edge_lower_bound(count_triangles(graph)) - 1e-9


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_edge_list_serialisation_round_trips(graph: Graph):
    assert from_edge_list_string(to_edge_list_string(graph)) == graph


@given(st.integers(min_value=2, max_value=30), st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_gnp_is_simple_and_reproducible(num_nodes, probability, seed):
    first = gnp_random_graph(num_nodes, probability, seed=seed)
    second = gnp_random_graph(num_nodes, probability, seed=seed)
    assert first == second
    max_edges = num_nodes * (num_nodes - 1) // 2
    assert 0 <= first.num_edges <= max_edges
    for u, v in first.edges():
        assert u != v


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_neighbor_symmetry(graph: Graph):
    for node in graph.nodes():
        for neighbor in graph.neighbors(node):
            assert node in graph.neighbors(neighbor)
