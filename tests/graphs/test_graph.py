"""Unit tests for the Graph representation."""

import pytest

from repro.errors import GraphError
from repro.graphs import Graph, degree_histogram, is_connected


class TestGraphConstruction:
    def test_empty_graph_has_no_edges(self):
        graph = Graph(5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 0

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_zero_node_graph(self):
        graph = Graph(0)
        assert graph.num_nodes == 0
        assert list(graph.edges()) == []

    def test_edges_from_constructor(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1)
        assert graph.has_edge(3, 2)

    def test_duplicate_edges_collapse(self):
        graph = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(1, 1)])

    def test_edge_to_missing_vertex_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 5)])

    def test_from_adjacency(self):
        graph = Graph.from_adjacency({0: [1, 2], 1: [2]})
        assert graph.num_nodes == 3
        assert graph.num_edges == 3

    def test_from_adjacency_explicit_size(self):
        graph = Graph.from_adjacency({0: [1]}, num_nodes=5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 1

    def test_from_edge_list(self):
        graph = Graph.from_edge_list(4, [(0, 1), (1, 2)])
        assert graph.num_edges == 2


class TestGraphQueries:
    def test_neighbors_symmetric(self):
        graph = Graph(4, [(0, 1), (0, 2)])
        assert graph.neighbors(0) == frozenset({1, 2})
        assert graph.neighbors(1) == frozenset({0})

    def test_sorted_neighbors(self):
        graph = Graph(5, [(0, 4), (0, 2), (0, 3)])
        assert graph.sorted_neighbors(0) == [2, 3, 4]

    def test_degree(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1

    def test_max_degree(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.max_degree() == 3

    def test_max_degree_empty(self):
        assert Graph(0).max_degree() == 0

    def test_average_degree(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert graph.average_degree() == pytest.approx(1.0)

    def test_density_complete(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        assert graph.density() == pytest.approx(1.0)

    def test_density_tiny(self):
        assert Graph(1).density() == 0.0

    def test_has_edge_false_for_self(self):
        graph = Graph(3, [(0, 1)])
        assert not graph.has_edge(1, 1)

    def test_query_missing_vertex_raises(self):
        graph = Graph(3)
        with pytest.raises(GraphError):
            graph.neighbors(7)
        with pytest.raises(GraphError):
            graph.degree(-1)

    def test_edges_canonical_order(self):
        graph = Graph(4, [(3, 2), (1, 0), (2, 0)])
        assert list(graph.edges()) == [(0, 1), (0, 2), (2, 3)]

    def test_common_neighbors(self):
        graph = Graph(5, [(0, 2), (1, 2), (0, 3), (1, 3), (0, 4)])
        assert graph.common_neighbors(0, 1) == frozenset({2, 3})

    def test_contains_protocol(self):
        graph = Graph(4, [(0, 1)])
        assert 2 in graph
        assert 9 not in graph
        assert (0, 1) in graph
        assert (1, 0) in graph
        assert (2, 3) not in graph
        assert "x" not in graph

    def test_len(self):
        assert len(Graph(7)) == 7

    def test_repr_mentions_sizes(self):
        assert "num_nodes=3" in repr(Graph(3, [(0, 1)]))


class TestGraphMutation:
    def test_add_edge_returns_true_when_new(self):
        graph = Graph(3)
        assert graph.add_edge(0, 1) is True
        assert graph.add_edge(0, 1) is False

    def test_remove_edge(self):
        graph = Graph(3, [(0, 1)])
        assert graph.remove_edge(0, 1) is True
        assert graph.num_edges == 0
        assert graph.remove_edge(0, 1) is False

    def test_remove_nonexistent_edge_noop(self):
        graph = Graph(3, [(0, 1)])
        assert graph.remove_edge(1, 2) is False
        assert graph.num_edges == 1

    def test_copy_is_independent(self):
        graph = Graph(3, [(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.num_edges == 1
        assert clone.num_edges == 2

    def test_equality(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 0)])
        c = Graph(3, [(0, 2)])
        assert a == b
        assert a != c
        assert a != "not a graph"

    def test_graphs_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph(2))


class TestInducedSubgraph:
    def test_membership_and_edges(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        view = graph.induced_subgraph([1, 2, 3])
        assert view.num_nodes == 3
        assert view.has_edge(1, 2)
        assert not view.has_edge(3, 4)
        assert list(view.edges()) == [(1, 2), (2, 3)]
        assert view.num_edges() == 2

    def test_neighbors_restricted(self):
        graph = Graph(5, [(0, 1), (1, 2), (1, 4)])
        view = graph.induced_subgraph([0, 1, 2])
        assert view.neighbors(1) == frozenset({0, 2})

    def test_invalid_vertex_rejected(self):
        graph = Graph(3)
        with pytest.raises(GraphError):
            graph.induced_subgraph([0, 9])

    def test_query_outside_view_rejected(self):
        graph = Graph(4, [(0, 1)])
        view = graph.induced_subgraph([0, 1])
        with pytest.raises(GraphError):
            view.neighbors(3)

    def test_repr(self):
        graph = Graph(4, [(0, 1)])
        view = graph.induced_subgraph([0, 1])
        assert "InducedSubgraph" in repr(view)


class TestGraphHelpers:
    def test_degree_histogram(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert degree_histogram(graph) == {3: 1, 1: 3}

    def test_is_connected_true(self):
        graph = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert is_connected(graph)

    def test_is_connected_false(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert not is_connected(graph)

    def test_is_connected_trivial(self):
        assert is_connected(Graph(0))
        assert is_connected(Graph(1))


class TestCsrThreadSafety:
    def test_concurrent_readers_and_mutator_get_consistent_snapshots(self):
        """Regression: the lazy CSR build races mutation without the lock.

        Readers hammer ``csr()`` while a writer flips edges.  Every
        returned view must be internally consistent — a torn snapshot
        (adjacency mutated mid-build) shows up as indptr/indices length
        disagreement, unsorted rows, or asymmetric edges.
        """
        import threading

        from repro.graphs import gnp_random_graph

        graph = gnp_random_graph(60, 0.2, seed=3)
        stop = threading.Event()
        problems = []

        def reader():
            while not stop.is_set():
                view = graph.csr()
                indptr, indices = view.indptr, view.indices
                if int(indptr[-1]) != indices.shape[0]:
                    problems.append("indptr total disagrees with indices length")
                    return
                if view.edge_u.shape[0] * 2 != indices.shape[0]:
                    problems.append("edge list disagrees with adjacency size")
                    return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for round_number in range(300):
                u = round_number % 59
                if graph.has_edge(u, u + 1):
                    graph.remove_edge(u, u + 1)
                else:
                    graph.add_edge(u, u + 1)
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert problems == []

    def test_pickled_graph_keeps_working(self):
        """The lock is process-local state and must survive a round trip."""
        import pickle

        graph = Graph(4, [(0, 1), (1, 2)])
        clone = pickle.loads(pickle.dumps(graph))
        assert clone == graph
        clone.add_edge(0, 3)
        assert clone.csr().num_edges == 3
