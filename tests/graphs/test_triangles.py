"""Unit tests for the centralized triangle ground-truth utilities."""

import math

import pytest

from repro.graphs import (
    Graph,
    clustering_coefficient,
    complete_graph,
    count_triangles,
    cycle_graph,
    delta_set_membership,
    edge_support,
    gnp_random_graph,
    heaviness_threshold,
    heavy_edges,
    heavy_triangles,
    is_heavy_triangle,
    is_triangle_free,
    iter_triangles,
    light_triangles,
    list_triangles,
    local_triangle_count,
    pair_in_delta,
    rivin_edge_lower_bound,
    triangles_through_node,
    union_of_cliques,
)


class TestListingAndCounting:
    def test_k3(self):
        assert list_triangles(complete_graph(3)) == [(0, 1, 2)]

    def test_k4(self):
        triangles = list_triangles(complete_graph(4))
        assert len(triangles) == 4
        assert (0, 1, 2) in triangles and (1, 2, 3) in triangles

    def test_k_n_count_formula(self):
        for n in (3, 5, 7):
            assert count_triangles(complete_graph(n)) == math.comb(n, 3)

    def test_triangle_free_graphs(self):
        assert count_triangles(cycle_graph(6)) == 0
        assert is_triangle_free(cycle_graph(6))
        assert not is_triangle_free(complete_graph(3))

    def test_empty_graph(self):
        assert list_triangles(Graph(5)) == []
        assert is_triangle_free(Graph(0))

    def test_iter_yields_canonical_sorted_triples(self):
        for a, b, c in iter_triangles(gnp_random_graph(20, 0.4, seed=1)):
            assert a < b < c

    def test_no_duplicates(self):
        triangles = list_triangles(gnp_random_graph(25, 0.4, seed=2))
        assert len(triangles) == len(set(triangles))

    def test_matches_networkx_reference(self):
        networkx = pytest.importorskip("networkx")
        graph = gnp_random_graph(30, 0.3, seed=3)
        reference = networkx.Graph(list(graph.edges()))
        reference.add_nodes_from(graph.nodes())
        expected = sum(networkx.triangles(reference).values()) // 3
        assert count_triangles(graph) == expected


class TestPerNodeAndPerEdge:
    def test_triangles_through_node(self):
        graph = complete_graph(4)
        assert len(triangles_through_node(graph, 0)) == 3

    def test_triangles_through_isolated_node(self):
        graph = Graph(4, [(1, 2), (2, 3), (1, 3)])
        assert triangles_through_node(graph, 0) == []

    def test_edge_support_single(self):
        graph = complete_graph(4)
        assert edge_support(graph, (0, 1)) == 2

    def test_edge_support_all(self):
        graph = complete_graph(4)
        supports = edge_support(graph)
        assert set(supports.values()) == {2}
        assert len(supports) == 6

    def test_local_triangle_count_consistency(self):
        graph = gnp_random_graph(20, 0.4, seed=5)
        per_node = local_triangle_count(graph)
        assert sum(per_node.values()) == 3 * count_triangles(graph)

    def test_clustering_coefficient_extremes(self):
        assert clustering_coefficient(complete_graph(4), 0) == pytest.approx(1.0)
        assert clustering_coefficient(cycle_graph(5), 0) == pytest.approx(0.0)
        assert clustering_coefficient(Graph(3, [(0, 1)]), 0) == 0.0


class TestHeaviness:
    def test_threshold_formula(self):
        assert heaviness_threshold(16, 0.5) == pytest.approx(4.0)
        assert heaviness_threshold(16, 0.0) == pytest.approx(1.0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            heaviness_threshold(16, 1.5)

    def test_clique_union_heavy_light_split(self):
        # Cliques of size 6 and 3: edges of the 6-clique have support 4,
        # edges of the 3-clique have support 1.
        graph = union_of_cliques([6, 3])
        epsilon = math.log(3) / math.log(graph.num_nodes)  # threshold = 3
        heavy = heavy_triangles(graph, epsilon)
        light = light_triangles(graph, epsilon)
        assert len(heavy) == 20
        assert len(light) == 1
        assert len(heavy) + len(light) == count_triangles(graph)

    def test_is_heavy_triangle_epsilon_zero(self):
        # With epsilon = 0 the threshold is 1 so every triangle is heavy.
        graph = complete_graph(4)
        for triangle in list_triangles(graph):
            assert is_heavy_triangle(graph, triangle, 0.0)

    def test_heavy_edges(self):
        graph = union_of_cliques([6, 3])
        epsilon = math.log(3) / math.log(graph.num_nodes)
        heavy = heavy_edges(graph, epsilon)
        assert len(heavy) == 15  # the 6-clique's edges
        assert all(u < 6 and v < 6 for u, v in heavy)


class TestDeltaSet:
    def test_no_landmarks_means_all_edges(self):
        graph = complete_graph(5)
        assert delta_set_membership(graph, []) == set(graph.edges())

    def test_landmark_removes_covered_pairs(self):
        graph = complete_graph(4)
        # With landmark 3, every pair among {0,1,2} has 3 as a common
        # neighbour, so only edges incident to 3 survive (3 itself has no
        # common neighbour *in X* with anyone... it does: e.g. pair (0,3) has
        # common neighbours 1,2 which are not in X, so it survives).
        surviving = delta_set_membership(graph, [3])
        assert (0, 1) not in surviving
        assert (0, 3) in surviving

    def test_pair_in_delta_for_non_edges(self):
        graph = Graph(4, [(0, 2), (1, 2)])
        # Pair (0, 1) is not an edge; common neighbour 2.
        assert pair_in_delta(graph, 0, 1, [])
        assert not pair_in_delta(graph, 0, 1, [2])

    def test_delta_membership_matches_pairwise_checks(self):
        graph = gnp_random_graph(18, 0.4, seed=9)
        landmarks = [0, 5, 9]
        members = delta_set_membership(graph, landmarks)
        for u, v in graph.edges():
            assert ((u, v) in members) == pair_in_delta(graph, u, v, landmarks)


class TestRivinBound:
    def test_zero_triangles(self):
        assert rivin_edge_lower_bound(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            rivin_edge_lower_bound(-1)

    def test_bound_holds_on_actual_graphs(self):
        for seed in range(5):
            graph = gnp_random_graph(25, 0.5, seed=seed)
            bound = rivin_edge_lower_bound(count_triangles(graph))
            assert graph.num_edges >= bound

    def test_bound_holds_on_cliques(self):
        for n in (3, 5, 8, 12):
            graph = complete_graph(n)
            assert graph.num_edges >= rivin_edge_lower_bound(count_triangles(graph))

    def test_monotone(self):
        assert rivin_edge_lower_bound(100) > rivin_edge_lower_bound(10)
