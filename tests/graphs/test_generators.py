"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    barabasi_albert_graph,
    complete_graph,
    count_triangles,
    cycle_graph,
    edge_support,
    empty_graph,
    gnp_random_graph,
    heavy_edge_gadget,
    is_triangle_free,
    lollipop_graph,
    planted_triangle_graph,
    random_regular_graph,
    triangle_free_bipartite,
    union_of_cliques,
)


class TestBasicGenerators:
    def test_empty_graph(self):
        graph = empty_graph(6)
        assert graph.num_nodes == 6
        assert graph.num_edges == 0

    def test_complete_graph_edge_count(self):
        graph = complete_graph(6)
        assert graph.num_edges == 15
        assert graph.max_degree() == 5

    def test_complete_graph_triangle_count(self):
        assert count_triangles(complete_graph(6)) == 20

    def test_cycle_graph_is_triangle_free_for_large_n(self):
        assert is_triangle_free(cycle_graph(8))

    def test_cycle_of_three_is_a_triangle(self):
        assert count_triangles(cycle_graph(3)) == 1

    def test_cycle_tiny_cases(self):
        assert cycle_graph(1).num_edges == 0
        assert cycle_graph(2).num_edges == 1


class TestGnp:
    def test_probability_zero_gives_empty(self):
        assert gnp_random_graph(10, 0.0, seed=1).num_edges == 0

    def test_probability_one_gives_complete(self):
        graph = gnp_random_graph(8, 1.0, seed=1)
        assert graph.num_edges == 28

    def test_invalid_probability_rejected(self):
        with pytest.raises(GraphError):
            gnp_random_graph(5, 1.5)
        with pytest.raises(GraphError):
            gnp_random_graph(5, -0.1)

    def test_seed_reproducibility(self):
        a = gnp_random_graph(20, 0.3, seed=9)
        b = gnp_random_graph(20, 0.3, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = gnp_random_graph(30, 0.3, seed=1)
        b = gnp_random_graph(30, 0.3, seed=2)
        assert a != b

    def test_accepts_generator_instance(self):
        rng = np.random.default_rng(4)
        graph = gnp_random_graph(10, 0.5, seed=rng)
        assert graph.num_nodes == 10

    def test_edge_count_near_expectation(self):
        graph = gnp_random_graph(60, 0.5, seed=3)
        expected = 0.5 * 60 * 59 / 2
        assert abs(graph.num_edges - expected) < 0.2 * expected

    def test_single_node(self):
        assert gnp_random_graph(1, 0.7, seed=0).num_edges == 0


class TestTriangleFreeBipartite:
    def test_is_triangle_free(self):
        graph = triangle_free_bipartite(16, 0.6, seed=2)
        assert is_triangle_free(graph)

    def test_edges_cross_partition_only(self):
        graph = triangle_free_bipartite(10, 1.0, seed=2)
        split = 5
        for u, v in graph.edges():
            assert (u < split) != (v < split)

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            triangle_free_bipartite(10, 2.0)


class TestPlantedTriangles:
    def test_planted_triangles_present(self):
        graph, planted = planted_triangle_graph(24, 3, seed=1)
        triangles = set()
        from repro.graphs import list_triangles

        triangles = set(list_triangles(graph))
        for t in planted:
            assert t in triangles

    def test_no_background_means_only_planted(self):
        graph, planted = planted_triangle_graph(24, 3, background_probability=0.0, seed=1)
        assert count_triangles(graph) == len(planted) == 3

    def test_zero_planted(self):
        graph, planted = planted_triangle_graph(12, 0, seed=1)
        assert planted == []
        assert is_triangle_free(graph)

    def test_too_many_planted_rejected(self):
        with pytest.raises(GraphError):
            planted_triangle_graph(8, 3)

    def test_negative_planted_rejected(self):
        with pytest.raises(GraphError):
            planted_triangle_graph(8, -1)

    def test_planted_are_disjoint(self):
        _, planted = planted_triangle_graph(30, 5, seed=8)
        used = [v for t in planted for v in t]
        assert len(used) == len(set(used))


class TestHeavyEdgeGadget:
    def test_designated_edge_support(self):
        graph, heavy_edge = heavy_edge_gadget(20, 10, seed=0)
        assert heavy_edge == (0, 1)
        assert edge_support(graph, heavy_edge) == 10

    def test_triangle_count_without_background(self):
        graph, _ = heavy_edge_gadget(20, 10, seed=0)
        assert count_triangles(graph) == 10

    def test_background_adds_edges(self):
        sparse, _ = heavy_edge_gadget(20, 5, background_probability=0.0, seed=1)
        dense, _ = heavy_edge_gadget(20, 5, background_probability=0.5, seed=1)
        assert dense.num_edges > sparse.num_edges

    def test_invalid_support_rejected(self):
        with pytest.raises(GraphError):
            heavy_edge_gadget(10, 9)
        with pytest.raises(GraphError):
            heavy_edge_gadget(10, -1)
        with pytest.raises(GraphError):
            heavy_edge_gadget(1, 0)


class TestBarabasiAlbert:
    def test_sizes(self):
        graph = barabasi_albert_graph(30, 3, seed=5)
        assert graph.num_nodes == 30
        # seed clique C(4,2)=6 edges plus 3 per additional vertex.
        assert graph.num_edges == 6 + 3 * 26

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(5, 0)
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, 3)

    def test_reproducible(self):
        a = barabasi_albert_graph(25, 2, seed=3)
        b = barabasi_albert_graph(25, 2, seed=3)
        assert a == b

    def test_contains_triangles(self):
        graph = barabasi_albert_graph(30, 3, seed=5)
        assert count_triangles(graph) > 0


class TestRandomRegular:
    def test_regularity(self):
        graph = random_regular_graph(12, 4, seed=1)
        assert all(graph.degree(v) == 4 for v in graph.nodes())

    def test_zero_degree(self):
        graph = random_regular_graph(5, 0, seed=1)
        assert graph.num_edges == 0

    def test_odd_product_rejected(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3)

    def test_degree_too_large_rejected(self):
        with pytest.raises(GraphError):
            random_regular_graph(4, 4)

    def test_reproducible(self):
        a = random_regular_graph(14, 3, seed=2)
        b = random_regular_graph(14, 3, seed=2)
        assert a == b


class TestLollipopAndCliqueUnion:
    def test_lollipop_structure(self):
        graph = lollipop_graph(5, 4)
        assert graph.num_nodes == 9
        assert graph.num_edges == 10 + 4
        assert count_triangles(graph) == 10

    def test_lollipop_invalid(self):
        with pytest.raises(GraphError):
            lollipop_graph(0, 3)
        with pytest.raises(GraphError):
            lollipop_graph(3, -1)

    def test_union_of_cliques_triangles(self):
        graph = union_of_cliques([5, 4, 3])
        assert graph.num_nodes == 12
        assert count_triangles(graph) == 10 + 4 + 1

    def test_union_of_cliques_invalid(self):
        with pytest.raises(GraphError):
            union_of_cliques([3, 0])

    def test_union_of_cliques_isolated_vertices(self):
        graph = union_of_cliques([1, 1, 2])
        assert graph.num_nodes == 4
        assert graph.num_edges == 1
