"""Tests for the zero-copy shared-memory graph plane."""

import gc
import pickle

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    SharedArraySpec,
    SharedGraphHandle,
    attach_shared_graph,
    gnp_random_graph,
    segment_exists,
    share_csr,
    shm_available,
)
from repro.graphs.shm import active_attachments, reap_pending

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory is not usable on this platform"
)


def _drain_attachments():
    """Collect dropped graphs until this process holds no attachments."""
    for _ in range(5):
        gc.collect()
        reap_pending()
        if not active_attachments():
            return
    raise AssertionError(f"attachments leaked: {active_attachments()}")


@pytest.fixture(autouse=True)
def _clean_attachment_state():
    yield
    _drain_attachments()


class TestShareAttach:
    def test_round_trip_arrays_and_oracle(self):
        graph = gnp_random_graph(80, 0.2, seed=3)
        csr = graph.csr()
        with share_csr(csr, oracle="materialize") as owner:
            attached = attach_shared_graph(owner.handle)
            assert attached.num_nodes == csr.num_nodes
            assert attached.num_edges == csr.num_edges
            np.testing.assert_array_equal(attached.indptr, csr.indptr)
            np.testing.assert_array_equal(attached.indices, csr.indices)
            np.testing.assert_array_equal(attached.edge_u, csr.edge_u)
            np.testing.assert_array_equal(attached.edge_v, csr.edge_v)
            # The oracle arrives pre-populated: these reads are cache hits,
            # not recomputations, and they agree with the source graph.
            np.testing.assert_array_equal(attached.edge_support(), csr.edge_support())
            np.testing.assert_array_equal(attached.triangles(), csr.triangles())

    def test_attached_views_are_read_only(self):
        graph = gnp_random_graph(30, 0.3, seed=1)
        with share_csr(graph.csr()) as owner:
            attached = attach_shared_graph(owner.handle)
            with pytest.raises(ValueError):
                attached.indices[0] = 99

    def test_oracle_omit_shares_bare_csr(self):
        graph = gnp_random_graph(30, 0.3, seed=1)
        csr = graph.csr()
        csr.edge_support()
        with share_csr(csr, oracle="omit") as owner:
            fields = {spec.field for spec in owner.handle.arrays}
            assert fields == {"indptr", "indices", "edge_u", "edge_v"}

    def test_oracle_keep_shares_only_computed_caches(self):
        graph = gnp_random_graph(30, 0.3, seed=1)
        csr = graph.csr()
        csr.edge_support()  # computed; triangles() is not
        with share_csr(csr, oracle="keep") as owner:
            fields = {spec.field for spec in owner.handle.arrays}
            assert "support" in fields
            assert "triangles" not in fields

    def test_invalid_oracle_mode_rejected(self):
        graph = gnp_random_graph(10, 0.3, seed=1)
        with pytest.raises(GraphError, match="oracle"):
            share_csr(graph.csr(), oracle="bogus")

    def test_handle_pickles_small(self):
        graph = gnp_random_graph(400, 0.1, seed=5)
        with share_csr(graph.csr(), oracle="materialize") as owner:
            handle_bytes = pickle.dumps(owner.handle, protocol=4)
            graph_bytes = pickle.dumps(graph, protocol=4)
            assert len(handle_bytes) < 1024
            assert len(handle_bytes) < len(graph_bytes) // 10
            clone = pickle.loads(handle_bytes)
            attached = attach_shared_graph(clone)
            assert attached.num_edges == graph.num_edges

    def test_empty_graph_shares(self):
        graph = Graph(3)
        with share_csr(graph.csr()) as owner:
            attached = attach_shared_graph(owner.handle)
            assert attached.num_edges == 0
            assert attached.triangles().shape == (0, 3)


class TestHandleValidation:
    def _spec(self, field, offset=0):
        return SharedArraySpec(field=field, dtype="<i8", shape=(4,), offset=offset)

    def test_missing_required_arrays(self):
        with pytest.raises(GraphError, match="missing required"):
            SharedGraphHandle(
                segment="x",
                num_nodes=4,
                num_edges=4,
                arrays=(self._spec("indptr"),),
                total_bytes=32,
            )

    def test_unknown_arrays(self):
        arrays = tuple(
            self._spec(field)
            for field in ("indptr", "indices", "edge_u", "edge_v", "mystery")
        )
        with pytest.raises(GraphError, match="unknown"):
            SharedGraphHandle(
                segment="x", num_nodes=4, num_edges=4, arrays=arrays, total_bytes=32
            )

    def test_repeated_arrays(self):
        arrays = tuple(
            self._spec(field)
            for field in ("indptr", "indices", "edge_u", "edge_v", "edge_v")
        )
        with pytest.raises(GraphError, match="repeats"):
            SharedGraphHandle(
                segment="x", num_nodes=4, num_edges=4, arrays=arrays, total_bytes=32
            )

    def test_attach_to_undersized_segment(self):
        graph = gnp_random_graph(20, 0.3, seed=1)
        with share_csr(graph.csr()) as owner:
            handle = owner.handle
            inflated = SharedGraphHandle(
                segment=handle.segment,
                num_nodes=handle.num_nodes,
                num_edges=handle.num_edges,
                arrays=handle.arrays,
                total_bytes=handle.total_bytes * 1000,
            )
            with pytest.raises(GraphError, match="smaller than its manifest"):
                attach_shared_graph(inflated)


class TestOwnerLifecycle:
    def test_close_unlinks_and_is_idempotent(self):
        graph = gnp_random_graph(20, 0.3, seed=1)
        owner = share_csr(graph.csr())
        name = owner.handle.segment
        assert segment_exists(name)
        assert not owner.closed
        owner.close()
        assert owner.closed
        assert not segment_exists(name)
        owner.close()  # idempotent

    def test_dropped_owner_unlinks_via_finalizer(self):
        graph = gnp_random_graph(20, 0.3, seed=1)
        owner = share_csr(graph.csr())
        name = owner.handle.segment
        del owner
        gc.collect()
        assert not segment_exists(name)

    def test_attach_after_close_is_a_graph_error(self):
        graph = gnp_random_graph(20, 0.3, seed=1)
        owner = share_csr(graph.csr())
        handle = owner.handle
        owner.close()
        with pytest.raises(GraphError, match="no longer exists"):
            attach_shared_graph(handle)

    def test_attached_graph_survives_owner_close(self):
        # POSIX unlink-while-mapped: releasing the *name* must not tear
        # down mappings that are already live.
        graph = gnp_random_graph(40, 0.3, seed=2)
        owner = share_csr(graph.csr(), oracle="materialize")
        attached = attach_shared_graph(owner.handle)
        owner.close()
        assert not segment_exists(owner.handle.segment)
        np.testing.assert_array_equal(attached.triangles(), graph.csr().triangles())

    def test_repr_reflects_state(self):
        graph = gnp_random_graph(10, 0.3, seed=1)
        owner = share_csr(graph.csr())
        assert "open" in repr(owner)
        owner.close()
        assert "closed" in repr(owner)


class TestAttachmentRefcounts:
    def test_attachments_share_one_mapping(self):
        graph = gnp_random_graph(30, 0.3, seed=1)
        with share_csr(graph.csr()) as owner:
            name = owner.handle.segment
            first = attach_shared_graph(owner.handle)
            second = attach_shared_graph(owner.handle)
            assert active_attachments()[name] == 2
            del first
            gc.collect()
            assert active_attachments()[name] == 1
            del second
            _drain_attachments()
            assert name not in active_attachments()

    def test_reap_pending_eventually_returns_zero(self):
        graph = gnp_random_graph(30, 0.3, seed=1)
        with share_csr(graph.csr()) as owner:
            attached = attach_shared_graph(owner.handle)
            del attached
        _drain_attachments()
        assert reap_pending() == 0


class TestGraphIntegration:
    def test_from_shared_round_trips_graph(self):
        graph = gnp_random_graph(50, 0.25, seed=9)
        with share_csr(graph.csr(), oracle="materialize") as owner:
            clone = Graph.from_shared(owner.handle)
            assert clone == graph
            assert clone.num_edges == graph.num_edges
            np.testing.assert_array_equal(
                clone.csr().triangles(), graph.csr().triangles()
            )

    def test_to_shared_caches_handle_until_release(self):
        graph = gnp_random_graph(30, 0.3, seed=4)
        handle = graph.to_shared()
        assert graph.to_shared() is handle
        assert segment_exists(handle.segment)
        graph.release_shared()
        assert not segment_exists(handle.segment)
        graph.release_shared()  # idempotent

    def test_mutation_invalidates_shared_segment(self):
        graph = gnp_random_graph(30, 0.3, seed=4)
        handle = graph.to_shared()
        graph.add_edge(0, 1) if not graph.has_edge(0, 1) else graph.remove_edge(0, 1)
        assert not segment_exists(handle.segment)
        fresh = graph.to_shared()
        assert fresh.segment != handle.segment
        graph.release_shared()

    def test_pickled_graph_does_not_adopt_segment(self):
        graph = gnp_random_graph(30, 0.3, seed=4)
        handle = graph.to_shared()
        clone = pickle.loads(pickle.dumps(graph, protocol=4))
        # The copy neither owns nor can unlink the original's segment.
        del clone
        gc.collect()
        assert segment_exists(handle.segment)
        graph.release_shared()
