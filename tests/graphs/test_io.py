"""Unit tests for edge-list serialisation."""

import io

import pytest

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    from_edge_list_string,
    gnp_random_graph,
    read_edge_list,
    read_edge_stream,
    to_edge_list_string,
    write_edge_list,
)


class TestRoundTrip:
    def test_string_round_trip(self):
        graph = gnp_random_graph(15, 0.4, seed=1)
        text = to_edge_list_string(graph)
        assert from_edge_list_string(text) == graph

    def test_file_round_trip(self, tmp_path):
        graph = gnp_random_graph(12, 0.5, seed=2)
        path = tmp_path / "graph.edges"
        write_edge_list(graph, path, comments=["generator: gnp", "seed: 2"])
        assert read_edge_list(path) == graph

    def test_stream_round_trip(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        buffer = io.StringIO()
        write_edge_list(graph, buffer)
        buffer.seek(0)
        assert read_edge_list(buffer) == graph

    def test_gzip_round_trip(self, tmp_path):
        graph = gnp_random_graph(30, 0.3, seed=4)
        path = tmp_path / "graph.edges.gz"
        write_edge_list(graph, path, comments=["generator: gnp", "seed: 4"])
        assert read_edge_list(path) == graph

    def test_gzip_file_is_actually_compressed(self, tmp_path):
        graph = gnp_random_graph(30, 0.3, seed=4)
        plain = tmp_path / "graph.edges"
        packed = tmp_path / "graph.edges.gz"
        write_edge_list(graph, plain)
        write_edge_list(graph, packed)
        # gzip magic bytes, and the payload is not stored as plain text.
        assert packed.read_bytes()[:2] == b"\x1f\x8b"
        assert packed.read_bytes() != plain.read_bytes()

    def test_gzip_string_path_accepted(self, tmp_path):
        graph = Graph(5, [(0, 1), (3, 4)])
        path = str(tmp_path / "tiny.gz")
        write_edge_list(graph, path)
        assert read_edge_list(path) == graph

    def test_isolated_vertices_preserved(self):
        graph = Graph(6, [(0, 1)])
        assert from_edge_list_string(to_edge_list_string(graph)).num_nodes == 6

    def test_empty_graph(self):
        graph = Graph(3)
        assert from_edge_list_string(to_edge_list_string(graph)) == graph


class TestFormat:
    def test_header_present(self):
        text = to_edge_list_string(Graph(5, [(0, 1)]))
        assert text.startswith("# nodes 5\n")

    def test_comments_written(self):
        text = to_edge_list_string(Graph(2, [(0, 1)]), comments=["hello"])
        assert "# hello" in text

    def test_missing_header_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list_string("0 1\n")

    def test_bad_header_count_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list_string("# nodes abc\n0 1\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list_string("# nodes 3\n0 1 2\n")

    def test_non_integer_endpoint_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list_string("# nodes 3\na b\n")

    def test_comment_and_blank_lines_skipped(self):
        text = "# nodes 3\n# a comment\n\n0 1\n"
        graph = from_edge_list_string(text)
        assert graph.num_edges == 1


class TestReadEdgeStream:
    def test_yields_canonical_pairs(self):
        stream = read_edge_stream(io.StringIO("3 1\n0 2\n"))
        assert list(stream) == [(1, 3), (0, 2)]

    def test_header_optional_and_skipped(self):
        stream = read_edge_stream(io.StringIO("# nodes 9\n0 1\n"))
        assert list(stream) == [(0, 1)]

    def test_comments_and_blanks_skipped(self):
        text = "# a comment\n\n0 1\n   \n# another\n1 2\n"
        assert list(read_edge_stream(io.StringIO(text))) == [(0, 1), (1, 2)]

    def test_duplicates_passed_through(self):
        stream = read_edge_stream(io.StringIO("0 1\n1 0\n0 1\n"))
        assert list(stream) == [(0, 1), (0, 1), (0, 1)]

    def test_is_lazy(self):
        # The malformed third line must not fail before it is reached.
        stream = read_edge_stream(io.StringIO("0 1\n1 2\nbroken\n"))
        assert next(stream) == (0, 1)
        assert next(stream) == (1, 2)
        with pytest.raises(GraphError, match="line 3"):
            next(stream)

    def test_self_loop_rejected_with_line_number(self):
        stream = read_edge_stream(io.StringIO("0 1\n2 2\n"))
        with pytest.raises(GraphError, match="line 2: self-loop"):
            list(stream)

    def test_gzip_path_round_trip(self, tmp_path):
        graph = gnp_random_graph(20, 0.3, seed=8)
        path = tmp_path / "stream.edges.gz"
        write_edge_list(graph, path)
        edges = list(read_edge_stream(path))
        assert sorted(edges) == sorted(graph.edges())

    def test_written_file_round_trips_through_stream(self, tmp_path):
        graph = Graph(6, [(0, 5), (1, 2), (2, 3)])
        path = tmp_path / "plain.edges"
        write_edge_list(graph, path, comments=["anything"])
        rebuilt = Graph(6, read_edge_stream(path))
        assert rebuilt == graph
