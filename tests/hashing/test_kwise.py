"""Unit and statistical tests for the k-wise independent hash families."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HashingError
from repro.hashing import HashFunction, KWiseIndependentFamily


class TestHashFunctionBasics:
    def test_output_in_range(self):
        family = KWiseIndependentFamily(domain_size=100, range_size=7)
        function = family.sample(np.random.default_rng(1))
        for value in range(100):
            assert 0 <= function(value) < 7

    def test_encode_decode_round_trip(self):
        family = KWiseIndependentFamily(domain_size=50, range_size=5)
        function = family.sample(np.random.default_rng(2))
        decoded = family.decode(function.encode())
        for value in range(50):
            assert function(value) == decoded(value)

    def test_equality_of_identical_functions(self):
        first = HashFunction((1, 2, 3), 101, 10)
        second = HashFunction((1, 2, 3), 101, 10)
        assert first == second

    def test_preimage(self):
        family = KWiseIndependentFamily(domain_size=30, range_size=3)
        function = family.sample(np.random.default_rng(3))
        bucket = function.preimage(0, range(30))
        assert all(function(x) == 0 for x in bucket)
        assert all(function(x) != 0 for x in range(30) if x not in bucket)

    def test_independence_property_exposed(self):
        family = KWiseIndependentFamily(domain_size=10, range_size=2, independence=4)
        assert family.sample().independence == 4

    def test_invalid_construction(self):
        with pytest.raises(HashingError):
            HashFunction((), 7, 3)
        with pytest.raises(HashingError):
            HashFunction((1,), 7, 0)
        with pytest.raises(HashingError):
            HashFunction((1,), 1, 3)
        with pytest.raises(HashingError):
            HashFunction((9,), 7, 3)  # coefficient outside field


class TestEncodingSize:
    def test_description_bits_formula(self):
        family = KWiseIndependentFamily(domain_size=100, range_size=10, independence=3)
        expected = 3 * math.ceil(math.log2(family.prime))
        assert family.description_bits() == expected
        assert family.sample().encoded_bits() == expected

    def test_description_is_logarithmic_in_domain(self):
        small = KWiseIndependentFamily(domain_size=64, range_size=4)
        large = KWiseIndependentFamily(domain_size=65536, range_size=4)
        # Doubling the bit-length of the domain should roughly double the
        # description, not blow it up polynomially.
        assert large.description_bits() <= 3 * small.description_bits()


class TestFamilyParameters:
    def test_prime_at_least_domain(self):
        family = KWiseIndependentFamily(domain_size=97, range_size=3)
        assert family.prime >= 97

    def test_invalid_parameters(self):
        with pytest.raises(HashingError):
            KWiseIndependentFamily(domain_size=0, range_size=3)
        with pytest.raises(HashingError):
            KWiseIndependentFamily(domain_size=5, range_size=0)
        with pytest.raises(HashingError):
            KWiseIndependentFamily(domain_size=5, range_size=2, independence=0)

    def test_decode_wrong_length_rejected(self):
        family = KWiseIndependentFamily(domain_size=10, range_size=2, independence=3)
        with pytest.raises(HashingError):
            family.decode((1, 2))

    def test_expected_bucket_load(self):
        family = KWiseIndependentFamily(domain_size=100, range_size=10)
        assert family.expected_bucket_load() == pytest.approx(10.0)

    def test_lemma1_bucket_bound(self):
        family = KWiseIndependentFamily(domain_size=102, range_size=10)
        assert family.lemma1_bucket_bound() == pytest.approx(4 * (2 + 100 / 10))

    def test_repr(self):
        family = KWiseIndependentFamily(domain_size=10, range_size=2)
        assert "KWiseIndependentFamily" in repr(family)

    def test_sample_reproducible_with_seeded_rng(self):
        family = KWiseIndependentFamily(domain_size=40, range_size=4)
        first = family.sample(np.random.default_rng(11))
        second = family.sample(np.random.default_rng(11))
        assert first == second


class TestStatisticalProperties:
    """Sampling-based checks of (approximate) uniformity and pairwise behaviour.

    These are statistical sanity checks with comfortable tolerances: they
    catch gross construction errors (e.g. a constant hash) without being
    flaky.
    """

    def test_single_value_marginal_is_roughly_uniform(self):
        family = KWiseIndependentFamily(domain_size=50, range_size=5)
        rng = np.random.default_rng(7)
        samples = 3000
        hits = sum(1 for _ in range(samples) if family.sample(rng)(17) == 0)
        expected = samples / 5
        assert abs(hits - expected) < 4 * math.sqrt(expected)

    def test_pairwise_collision_rate(self):
        family = KWiseIndependentFamily(domain_size=50, range_size=5)
        rng = np.random.default_rng(8)
        samples = 3000
        both_zero = sum(
            1
            for _ in range(samples)
            if (h := family.sample(rng))(3) == 0 and h(29) == 0
        )
        expected = samples / 25
        assert abs(both_zero - expected) < 5 * math.sqrt(expected)

    def test_triple_collision_rate(self):
        # 3-wise independence: Pr[h(x)=h(y)=h(z)=0] = 1/|Y|^3.
        family = KWiseIndependentFamily(domain_size=30, range_size=3)
        rng = np.random.default_rng(9)
        samples = 4000
        all_zero = sum(
            1
            for _ in range(samples)
            if (h := family.sample(rng))(1) == 0 and h(2) == 0 and h(3) == 0
        )
        expected = samples / 27
        assert abs(all_zero - expected) < 5 * math.sqrt(expected) + 5

    def test_exact_uniformity_over_field_without_range_reduction(self):
        # When the range size equals the prime, the polynomial output is an
        # exactly uniform field element for a uniform constant coefficient:
        # enumerate the whole family on a tiny field and count.
        domain = 5
        family = KWiseIndependentFamily(domain_size=domain, range_size=family_prime(domain), independence=2)
        prime = family.prime
        counts = {y: 0 for y in range(prime)}
        for a0 in range(prime):
            for a1 in range(prime):
                function = HashFunction((a0, a1), prime, prime)
                counts[function(3)] += 1
        assert len(set(counts.values())) == 1


def family_prime(domain: int) -> int:
    """Return the prime a family over this domain would use (helper)."""
    return KWiseIndependentFamily(domain_size=domain, range_size=2).prime


@given(
    st.integers(min_value=2, max_value=200),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_property_outputs_always_in_range(domain_size, range_size, seed):
    family = KWiseIndependentFamily(domain_size=domain_size, range_size=range_size)
    function = family.sample(np.random.default_rng(seed))
    for value in range(0, domain_size, max(1, domain_size // 10)):
        assert 0 <= function(value) < range_size


@given(st.integers(min_value=2, max_value=100), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_property_encode_decode_identity(domain_size, seed):
    family = KWiseIndependentFamily(domain_size=domain_size, range_size=4)
    function = family.sample(np.random.default_rng(seed))
    decoded = family.decode(function.encode())
    assert all(function(x) == decoded(x) for x in range(domain_size))


class TestDecodeMemoization:
    def test_same_description_decodes_to_one_shared_instance(self):
        # A2 decodes each neighbour's descriptor once per received message;
        # the family memoizes per coefficient tuple so repeated decodes are
        # dictionary hits on a shared immutable value object.
        family = KWiseIndependentFamily(domain_size=64, range_size=4)
        function = family.sample(np.random.default_rng(3))
        first = family.decode(function.encode())
        second = family.decode(list(function.encode()))
        assert first is second
        assert first == function

    def test_distinct_descriptions_stay_distinct(self):
        family = KWiseIndependentFamily(domain_size=64, range_size=4)
        rng = np.random.default_rng(4)
        one = family.sample(rng)
        other = family.sample(rng)
        assert one.coefficients != other.coefficients
        assert family.decode(one.encode()) is not family.decode(other.encode())

    def test_wrong_length_still_rejected(self):
        family = KWiseIndependentFamily(domain_size=64, range_size=4, independence=3)
        with pytest.raises(HashingError):
            family.decode((1, 2))
