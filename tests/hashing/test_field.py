"""Unit tests for prime-field helpers."""

import pytest

from repro.hashing import eval_polynomial_mod, is_prime, next_prime


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 101, 997):
            assert is_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 6, 9, 15, 21, 25, 27, 33, 49, 1001):
            assert not is_prime(c)

    def test_negative(self):
        assert not is_prime(-7)

    def test_large_prime(self):
        assert is_prime(2**31 - 1)  # Mersenne prime
        assert not is_prime(2**32 - 1)

    def test_carmichael_numbers_rejected(self):
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(carmichael)


class TestNextPrime:
    def test_exact_prime_returned(self):
        assert next_prime(7) == 7
        assert next_prime(2) == 2

    def test_next_after_composite(self):
        assert next_prime(8) == 11
        assert next_prime(90) == 97

    def test_one_maps_to_two(self):
        assert next_prime(1) == 2

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            next_prime(0)

    def test_result_is_always_prime_and_at_least_bound(self):
        for bound in (10, 100, 1000, 12345):
            p = next_prime(bound)
            assert p >= bound
            assert is_prime(p)


class TestPolynomialEvaluation:
    def test_constant(self):
        assert eval_polynomial_mod([5], 3, 7) == 5

    def test_linear(self):
        # 2 + 3x mod 7 at x = 4 -> 14 mod 7 = 0
        assert eval_polynomial_mod([2, 3], 4, 7) == 0

    def test_quadratic(self):
        # 1 + 2x + 3x^2 mod 11 at x = 5 -> 1 + 10 + 75 = 86 mod 11 = 9
        assert eval_polynomial_mod([1, 2, 3], 5, 11) == 9

    def test_matches_naive_evaluation(self):
        coefficients = [3, 1, 4, 1, 5]
        modulus = 101
        for point in range(0, 20):
            expected = sum(c * point**i for i, c in enumerate(coefficients)) % modulus
            assert eval_polynomial_mod(coefficients, point, modulus) == expected

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            eval_polynomial_mod([1], 2, 0)

    def test_empty_coefficients(self):
        with pytest.raises(ValueError):
            eval_polynomial_mod([], 2, 7)
