"""Shared fixtures for the test suite.

Workload graphs are deliberately small (tens of nodes) so the whole suite
runs in well under a minute; the larger sweeps live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    complete_graph,
    gnp_random_graph,
    heavy_edge_gadget,
    planted_triangle_graph,
    triangle_free_bipartite,
    union_of_cliques,
)


@pytest.fixture
def triangle_graph() -> Graph:
    """The smallest graph with a triangle: K3."""
    return complete_graph(3)


@pytest.fixture
def path_graph() -> Graph:
    """A 4-node path (triangle-free, connected)."""
    return Graph(4, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def small_dense_graph() -> Graph:
    """A 24-node G(n, 0.4) instance with many triangles."""
    return gnp_random_graph(24, 0.4, seed=42)


@pytest.fixture
def medium_dense_graph() -> Graph:
    """A 40-node G(n, 0.35) instance used by integration tests."""
    return gnp_random_graph(40, 0.35, seed=7)


@pytest.fixture
def bipartite_graph() -> Graph:
    """A 20-node triangle-free bipartite graph."""
    return triangle_free_bipartite(20, 0.5, seed=3)


@pytest.fixture
def planted_graph():
    """A 30-node graph with 4 planted, vertex-disjoint triangles."""
    return planted_triangle_graph(30, 4, seed=11)


@pytest.fixture
def gadget_graph():
    """A heavy-edge gadget: edge (0, 1) shared by 12 triangles on 20 nodes."""
    return heavy_edge_gadget(20, 12, seed=5)


@pytest.fixture
def clique_union_graph() -> Graph:
    """A union of cliques of sizes 6, 4 and 3 (heavy and light triangles)."""
    return union_of_cliques([6, 4, 3])
