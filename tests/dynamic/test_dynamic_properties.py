"""Property-based differential suite for the dynamic layer.

Drives random insert/delete batch sequences through ``DeltaGraph`` and
``IncrementalTriangleOracle`` and, after *every* batch, pins the
incremental answers exactly against from-scratch recomputation on the
compacted graph: triangle count, per-node counts, the full edge_support
index, and the listed created/destroyed triangle sets.  A tiny compaction
threshold makes sequences routinely cross compaction boundaries, and the
batch generator deliberately re-inserts recently deleted edges.
"""

from hypothesis import given, settings, strategies as st
import numpy as np

from repro.dynamic import DeltaGraph, IncrementalTriangleOracle
from repro.graphs import Graph


@st.composite
def batch_sequences(draw):
    """A start graph plus a sequence of insert/delete batches over it."""
    num_nodes = draw(st.integers(min_value=1, max_value=10))
    possible = [(u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)]
    start = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        if possible
        else st.just([])
    )
    batches = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        if possible:
            insert = draw(st.lists(st.sampled_from(possible), unique=True, max_size=5))
            deletable = [e for e in possible if e not in insert]
            delete = (
                draw(st.lists(st.sampled_from(deletable), unique=True, max_size=5))
                if deletable
                else []
            )
        else:
            insert, delete = [], []
        batches.append((insert, delete))
    return num_nodes, start, batches


def reference_state(num_nodes, edge_set):
    graph = Graph(num_nodes, sorted(edge_set))
    csr = graph.csr()
    n = max(num_nodes, 1)
    keys = csr._edge_key_array()
    return (
        csr.count_triangles(),
        csr.local_triangle_counts().astype(np.int64),
        dict(zip(keys.tolist(), csr.edge_support().tolist())),
        {tuple(t) for t in csr.triangles()},
    )


@given(batch_sequences(), st.sampled_from([2, 4, 1_000_000]))
@settings(max_examples=120, deadline=None)
def test_oracle_matches_recompute_after_every_batch(case, compact_threshold):
    num_nodes, start, batches = case
    oracle = IncrementalTriangleOracle(
        Graph(num_nodes, start), compact_threshold=compact_threshold
    )
    edge_set = set(start)
    n = max(num_nodes, 1)
    triangles = reference_state(num_nodes, edge_set)[3]

    for insert, delete in batches:
        delta = oracle.apply_batch(insert=insert, delete=delete)
        edge_set |= set(insert)
        edge_set -= set(delete)

        total, node_counts, support, new_triangles = reference_state(num_nodes, edge_set)

        # Counts and indexes, exactly.
        assert oracle.total_triangles == total
        assert np.array_equal(oracle.node_counts(), node_counts)
        assert {
            lo * n + hi: s for (lo, hi), s in oracle.support_map().items()
        } == support

        # The streamed listing is exactly the symmetric difference.
        assert set(delta.created) == new_triangles - triangles
        assert set(delta.destroyed) == triangles - new_triangles
        triangles = new_triangles

        # Effective edges recorded in the delta match the set evolution.
        assert set(delta.inserted) <= set(insert)
        assert set(delta.deleted) <= set(delete)

    # Terminal cross-check: the snapshot compacts to the reference CSR.
    final = oracle.snapshot.compact()
    ref = Graph(num_nodes, sorted(edge_set)).csr()
    assert final.indices.tobytes() == ref.indices.tobytes()
    assert final.indptr.tobytes() == ref.indptr.tobytes()


@given(batch_sequences())
@settings(max_examples=80, deadline=None)
def test_delta_graph_matches_set_semantics(case):
    num_nodes, start, batches = case
    delta = DeltaGraph(Graph(num_nodes, start), compact_threshold=3)
    edge_set = set(start)
    for version, (insert, delete) in enumerate(batches, start=1):
        snap, ins_keys, del_keys = delta.apply_batch(insert=insert, delete=delete)
        edge_set |= set(insert)
        edge_set -= set(delete)
        assert snap.version == version
        assert snap.num_edges == len(edge_set)
        for node in range(num_nodes):
            expected = sorted(
                v for (a, b) in edge_set for v in ((b,) if a == node else (a,) if b == node else ())
            )
            assert snap.neighbors(node).tolist() == expected
