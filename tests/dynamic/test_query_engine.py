"""Tests for the versioned query engine (consistency, journal, threading)."""

import threading

import numpy as np
import pytest

from repro.api import QuerySpec
from repro.dynamic import TriangleQueryEngine
from repro.errors import AnalysisError, GraphError
from repro.graphs import Graph, gnp_random_graph


def k4_minus_one():
    return Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])


class TestQueries:
    def test_count_is_version_stamped(self):
        engine = TriangleQueryEngine(k4_minus_one())
        result = engine.query(QuerySpec(kind="count"))
        assert result.version == 0
        assert result.payload == {"triangles": 2, "num_nodes": 4, "num_edges": 5}
        engine.apply_batch(insert=[(2, 3)])
        result = engine.query(QuerySpec(kind="count"))
        assert result.version == 1
        assert result.payload["triangles"] == 4

    def test_node_counts_all_and_subset(self):
        engine = TriangleQueryEngine(k4_minus_one())
        full = engine.query(QuerySpec(kind="node-counts"))
        assert full.payload["nodes"] == [0, 1, 2, 3]
        assert full.payload["counts"] == [2, 2, 1, 1]
        some = engine.query(QuerySpec(kind="node-counts", params={"nodes": [3, 0]}))
        assert some.payload == {"nodes": [3, 0], "counts": [1, 2]}

    def test_node_counts_out_of_range(self):
        engine = TriangleQueryEngine(k4_minus_one())
        with pytest.raises(AnalysisError, match="out of range"):
            engine.query(QuerySpec(kind="node-counts", params={"nodes": [4]}))

    def test_edge_support_with_absent_edge(self):
        engine = TriangleQueryEngine(k4_minus_one())
        result = engine.query(
            QuerySpec(kind="edge-support", params={"edges": [[1, 0], [2, 3]]})
        )
        assert result.payload["edges"] == [[0, 1], [2, 3]]  # canonicalised
        assert result.payload["support"] == [2, None]

    def test_edge_support_invalid_edge(self):
        engine = TriangleQueryEngine(k4_minus_one())
        with pytest.raises(AnalysisError, match="not a valid edge"):
            engine.query(QuerySpec(kind="edge-support", params={"edges": [[1, 1]]}))

    def test_unknown_kind_rejected_at_spec(self):
        with pytest.raises(AnalysisError, match="unknown query kind"):
            QuerySpec(kind="centroids")

    def test_non_spec_rejected(self):
        engine = TriangleQueryEngine(k4_minus_one())
        with pytest.raises(AnalysisError, match="expects a QuerySpec"):
            engine.query({"kind": "count"})


class TestDeltaSince:
    def test_reports_batches_after_version(self):
        engine = TriangleQueryEngine(k4_minus_one(), listing=True)
        engine.apply_batch(insert=[(2, 3)])
        engine.apply_batch(delete=[(0, 1)])
        result = engine.query(QuerySpec(kind="delta-since", params={"version": 1}))
        batches = result.payload["batches"]
        assert [b["version"] for b in batches] == [2]
        assert batches[0]["deleted"] == [[0, 1]]
        assert batches[0]["destroyed"]  # listing mode retains triangles

    def test_listing_off_omits_triangles(self):
        engine = TriangleQueryEngine(k4_minus_one(), listing=False)
        engine.apply_batch(insert=[(2, 3)])
        batch = engine.query(QuerySpec(kind="delta-since", params={"version": 0}))
        (doc,) = batch.payload["batches"]
        assert "created" not in doc
        assert doc["created_count"] == 2

    def test_current_version_yields_empty(self):
        engine = TriangleQueryEngine(k4_minus_one())
        engine.apply_batch(insert=[(2, 3)])
        result = engine.query(QuerySpec(kind="delta-since", params={"version": 1}))
        assert result.payload["batches"] == []

    def test_future_version_rejected(self):
        engine = TriangleQueryEngine(k4_minus_one())
        with pytest.raises(AnalysisError, match="ahead of the current"):
            engine.query(QuerySpec(kind="delta-since", params={"version": 3}))

    def test_truncated_journal_rejected(self):
        engine = TriangleQueryEngine(k4_minus_one(), journal_limit=2)
        for step in range(4):
            engine.apply_batch(insert=[(2, 3)] if step % 2 == 0 else [], delete=[(2, 3)] if step % 2 else [])
        with pytest.raises(AnalysisError, match="predates the retained journal"):
            engine.query(QuerySpec(kind="delta-since", params={"version": 0}))
        ok = engine.query(QuerySpec(kind="delta-since", params={"version": 2}))
        assert [b["version"] for b in ok.payload["batches"]] == [3, 4]


class TestStatusAndVerify:
    def test_status_document(self):
        engine = TriangleQueryEngine(k4_minus_one())
        engine.apply_batch(insert=[(2, 3)])
        engine.query(QuerySpec(kind="count"))
        status = engine.status()
        assert status["version"] == 1
        assert status["triangles"] == 4
        assert status["batches_applied"] == 1
        assert status["queries_answered"] == 1

    def test_verify_against_recompute(self):
        engine = TriangleQueryEngine(gnp_random_graph(25, 0.3, seed=9), compact_threshold=5)
        for step in range(6):
            engine.apply_batch(insert=[(step, step + 10)])
        summary = engine.verify_against_recompute()
        assert summary["version"] == 6

    def test_bad_journal_limit(self):
        with pytest.raises(GraphError, match="journal_limit"):
            TriangleQueryEngine(Graph(2), journal_limit=0)


class TestThreadedConsistency:
    def test_readers_never_observe_half_applied_batches(self):
        """Concurrent count queries see v-consistent (version, count) pairs.

        Each applied batch inserts OR deletes the three edges of one
        triangle on otherwise-isolated nodes, so every consistent state
        has count == base + (version % 2 == 1).  A torn read (some of the
        batch applied) would produce a count off by the partial edges.
        """
        base = gnp_random_graph(30, 0.2, seed=12)
        base_count = base.csr().count_triangles()
        # Nodes 30..32 are isolated in the extended graph.
        extended = Graph(33, list(base.edges()))
        engine = TriangleQueryEngine(extended, compact_threshold=4)
        tri = [(30, 31), (31, 32), (30, 32)]

        stop = threading.Event()
        problems = []

        def reader():
            spec = QuerySpec(kind="count")
            while not stop.is_set():
                result = engine.query(spec)
                expected = base_count + (1 if result.version % 2 == 1 else 0)
                if result.payload["triangles"] != expected:
                    problems.append(
                        (result.version, result.payload["triangles"], expected)
                    )

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for step in range(60):
                if step % 2 == 0:
                    engine.apply_batch(insert=tri)
                else:
                    engine.apply_batch(delete=tri)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert problems == []
