"""The ``repro query`` verb: one-shot, client mode, --json, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.api.cli import main
from repro.dynamic import QueryServer, TriangleQueryEngine
from repro.graphs import Graph, write_edge_list


def _run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def k4_minus_one():
    return Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "graph.edges.gz"
    write_edge_list(k4_minus_one(), path)
    return str(path)


@pytest.fixture()
def batch_file(tmp_path):
    path = tmp_path / "batch.json"
    path.write_text(json.dumps({"insert": [[2, 3]], "delete": [[0, 1]]}), encoding="utf-8")
    return str(path)


class TestListQueries:
    def test_human(self, capsys):
        code, out, _ = _run(capsys, "list", "queries")
        assert code == 0
        assert "edge-support" in out and "delta-since" in out

    def test_json(self, capsys):
        code, out, _ = _run(capsys, "list", "queries", "--json")
        assert code == 0
        payload = json.loads(out)
        names = {kind["name"] for kind in payload["queries"]}
        assert names == {"count", "node-counts", "edge-support", "delta-since"}
        assert "algorithms" not in payload

    def test_all_includes_queries(self, capsys):
        code, out, _ = _run(capsys, "list", "--json")
        assert json.loads(out)["queries"]


class TestOneShot:
    def test_default_count(self, capsys, graph_file):
        code, out, _ = _run(capsys, "query", "--graph", graph_file)
        assert code == 0
        assert "triangles=2" in out

    def test_count_json(self, capsys, graph_file):
        code, out, _ = _run(capsys, "query", "--graph", graph_file, "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["result"]["payload"]["triangles"] == 2
        assert payload["result"]["version"] == 0

    def test_workload_source(self, capsys):
        code, out, _ = _run(
            capsys,
            "query",
            "--workload",
            "gnp",
            "--workload-params",
            '{"num_nodes": 30, "edge_probability": 0.3}',
            "--seed",
            "7",
            "--json",
        )
        assert code == 0
        assert json.loads(out)["result"]["payload"]["num_nodes"] == 30

    def test_apply_then_query(self, capsys, graph_file, batch_file):
        code, out, _ = _run(
            capsys, "query", "--graph", graph_file, "--apply", batch_file,
            "--kind", "count", "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["version"] == 1
        # K4 minus (0,1): triangles (0,2,3) and (1,2,3).
        assert payload["result"]["payload"]["triangles"] == 2
        (applied,) = payload["applied"]
        assert applied["created_count"] == 2 and applied["destroyed_count"] == 2

    def test_apply_edges_stream(self, capsys, graph_file, tmp_path):
        edges = tmp_path / "extra.edges"
        edges.write_text("# a comment\n\n2 3\n3 2\n", encoding="utf-8")
        code, out, _ = _run(
            capsys, "query", "--graph", graph_file, "--apply-edges", str(edges),
            "--kind", "count", "--json",
        )
        assert code == 0
        assert json.loads(out)["result"]["payload"]["triangles"] == 4  # full K4

    def test_apply_only_no_query(self, capsys, graph_file, batch_file):
        code, out, _ = _run(capsys, "query", "--graph", graph_file, "--apply", batch_file)
        assert code == 0
        assert "applied batch" in out and "triangles=" not in out

    def test_spec_file(self, capsys, graph_file, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps({"schema": 1, "kind": "edge-support", "params": {"edges": [[0, 1]]}}),
            encoding="utf-8",
        )
        code, out, _ = _run(capsys, "query", "--graph", graph_file, "--spec", str(spec), "--json")
        assert code == 0
        assert json.loads(out)["result"]["payload"]["support"] == [2]

    def test_node_counts_text(self, capsys, graph_file):
        code, out, _ = _run(
            capsys, "query", "--graph", graph_file, "--kind", "node-counts",
            "--params", '{"nodes": [0, 2]}',
        )
        assert code == 0
        assert "0\t2" in out and "2\t1" in out


class TestErrorContract:
    def test_unknown_kind_exits_2(self, capsys, graph_file):
        code, _, err = _run(capsys, "query", "--graph", graph_file, "--kind", "nope")
        assert code == 2
        assert "unknown query kind" in err

    def test_malformed_params_exit_2(self, capsys, graph_file):
        code, _, err = _run(
            capsys, "query", "--graph", graph_file, "--kind", "edge-support",
            "--params", "not-json",
        )
        assert code == 2 and "JSON" in err

    def test_missing_required_param_exits_2(self, capsys, graph_file):
        code, _, err = _run(capsys, "query", "--graph", graph_file, "--kind", "edge-support")
        assert code == 2
        assert "requires parameter" in err

    def test_spec_and_kind_conflict(self, capsys, graph_file, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text('{"kind": "count"}', encoding="utf-8")
        code, _, err = _run(
            capsys, "query", "--graph", graph_file, "--spec", str(spec), "--kind", "count"
        )
        assert code == 2 and "mutually exclusive" in err

    def test_malformed_spec_document_exits_2(self, capsys, graph_file, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text('{"kind": "count", "surprise": 1}', encoding="utf-8")
        code, _, err = _run(capsys, "query", "--graph", graph_file, "--spec", str(spec))
        assert code == 2 and "unknown fields" in err

    def test_malformed_batch_file_exits_2(self, capsys, graph_file, tmp_path):
        batch = tmp_path / "batch.json"
        batch.write_text('{"inserts": [[0, 1]]}', encoding="utf-8")
        code, _, err = _run(capsys, "query", "--graph", graph_file, "--apply", str(batch))
        assert code == 2 and "unknown fields" in err

    def test_no_source_no_root_exits_2(self, capsys):
        code, _, err = _run(capsys, "query")
        assert code == 2 and "nothing to query" in err

    def test_source_plus_root_exits_2(self, capsys, graph_file, tmp_path):
        code, _, err = _run(capsys, "query", str(tmp_path), "--graph", graph_file)
        assert code == 2 and "drop ROOT" in err

    def test_graph_and_workload_conflict(self, capsys, graph_file):
        code, _, err = _run(
            capsys, "query", "--graph", graph_file, "--workload", "gnp"
        )
        assert code == 2 and "mutually exclusive" in err

    def test_params_without_kind(self, capsys, graph_file):
        code, _, err = _run(capsys, "query", "--graph", graph_file, "--params", "{}")
        assert code == 2 and "--params needs --kind" in err


class TestClientMode:
    def test_query_and_apply_against_running_server(self, capsys, tmp_path, batch_file):
        engine = TriangleQueryEngine(k4_minus_one(), listing=False)
        with QueryServer(tmp_path / "svc", engine):
            root = str(tmp_path / "svc")
            code, out, _ = _run(capsys, "query", root, "--json")
            assert code == 0
            assert json.loads(out)["result"]["payload"]["triangles"] == 2

            code, out, _ = _run(capsys, "query", root, "--apply", batch_file, "--json")
            assert code == 0
            payload = json.loads(out)
            assert payload["version"] == 1

            code, out, _ = _run(capsys, "query", root, "--kind", "count")
            assert code == 0
            assert "triangles=2 (version 1" in out

    def test_stop_flag(self, capsys, tmp_path):
        engine = TriangleQueryEngine(k4_minus_one())
        server = QueryServer(tmp_path / "svc", engine)
        server.start()
        try:
            code, out, _ = _run(capsys, "query", str(tmp_path / "svc"), "--stop")
            assert code == 0
            server.wait()
        finally:
            server.stop()
        assert not (tmp_path / "svc" / "service.json").exists()

    def test_missing_service_exits_2(self, capsys, tmp_path):
        code, _, err = _run(capsys, "query", str(tmp_path / "nowhere"), "--kind", "count")
        assert code == 2

    def test_stop_and_serve_conflict(self, capsys, tmp_path):
        code, _, err = _run(capsys, "query", str(tmp_path), "--serve", "--stop")
        assert code == 2 and "mutually exclusive" in err
