"""Unit tests for the incremental triangle oracle (crafted sequences)."""

import numpy as np
import pytest

from repro.dynamic import BatchDelta, IncrementalTriangleOracle
from repro.errors import GraphError
from repro.graphs import Graph, gnp_random_graph


def recompute(oracle):
    """From-scratch ground truth for the oracle's current snapshot."""
    csr = oracle.snapshot.compact()
    n = max(csr.num_nodes, 1)
    keys = csr._edge_key_array()
    return (
        csr.count_triangles(),
        csr.local_triangle_counts().astype(np.int64),
        dict(zip(keys.tolist(), csr.edge_support().tolist())),
    )


def assert_pinned(oracle):
    total, node_counts, support = recompute(oracle)
    assert oracle.total_triangles == total
    assert np.array_equal(oracle.node_counts(), node_counts)
    n = max(oracle.num_nodes, 1)
    assert {lo * n + hi: s for (lo, hi), s in oracle.support_map().items()} == support


class TestSeeding:
    def test_initial_state_matches_base(self):
        graph = gnp_random_graph(30, 0.3, seed=11)
        oracle = IncrementalTriangleOracle(graph)
        assert oracle.version == 0
        assert oracle.num_edges == graph.num_edges
        assert_pinned(oracle)

    def test_empty_graph(self):
        oracle = IncrementalTriangleOracle(Graph(5))
        assert oracle.total_triangles == 0
        delta = oracle.apply_batch(insert=[(0, 1), (1, 2), (0, 2)])
        assert delta.created == ((0, 1, 2),)
        assert oracle.total_triangles == 1
        assert_pinned(oracle)


class TestCraftedBatches:
    def test_single_edge_closes_triangle(self):
        oracle = IncrementalTriangleOracle(Graph(3, [(0, 1), (1, 2)]))
        delta = oracle.apply_batch(insert=[(0, 2)])
        assert delta.created == ((0, 1, 2),)
        assert delta.destroyed == ()
        assert delta.triangles_after == 1
        assert oracle.support(0, 1) == 1
        assert_pinned(oracle)

    def test_delete_breaks_triangle(self):
        oracle = IncrementalTriangleOracle(Graph(3, [(0, 1), (1, 2), (0, 2)]))
        delta = oracle.apply_batch(delete=[(1, 2)])
        assert delta.destroyed == ((0, 1, 2),)
        assert oracle.total_triangles == 0
        assert oracle.support(0, 1) == 0
        assert oracle.support(1, 2) is None
        assert_pinned(oracle)

    def test_triangle_entirely_inside_one_batch(self):
        """All three edges inserted at once: min-index rule counts it once."""
        oracle = IncrementalTriangleOracle(Graph(4))
        delta = oracle.apply_batch(insert=[(0, 1), (0, 2), (1, 2)])
        assert delta.created == ((0, 1, 2),)
        assert oracle.total_triangles == 1
        assert_pinned(oracle)

    def test_triangle_destroyed_by_two_deletes_counted_once(self):
        oracle = IncrementalTriangleOracle(Graph(3, [(0, 1), (1, 2), (0, 2)]))
        delta = oracle.apply_batch(delete=[(0, 1), (1, 2)])
        assert delta.destroyed == ((0, 1, 2),)
        assert oracle.total_triangles == 0
        assert_pinned(oracle)

    def test_mixed_insert_delete_batch(self):
        # K4 minus (2,3); insert (2,3), delete (0,1) in one batch.
        oracle = IncrementalTriangleOracle(
            Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
        )
        assert oracle.total_triangles == 2
        delta = oracle.apply_batch(insert=[(2, 3)], delete=[(0, 1)])
        assert delta.destroyed == ((0, 1, 2), (0, 1, 3))
        assert delta.created == ((0, 2, 3), (1, 2, 3))
        assert oracle.total_triangles == 2
        assert_pinned(oracle)

    def test_delete_then_reinsert_restores_counts(self):
        graph = gnp_random_graph(25, 0.35, seed=4)
        oracle = IncrementalTriangleOracle(graph)
        before_total = oracle.total_triangles
        before_support = oracle.support_map()
        edge = next(iter(graph.edges()))
        d1 = oracle.apply_batch(delete=[edge])
        assert_pinned(oracle)
        d2 = oracle.apply_batch(insert=[edge])
        assert_pinned(oracle)
        assert oracle.total_triangles == before_total
        assert oracle.support_map() == before_support
        assert set(d2.created) == set(d1.destroyed)

    def test_noop_batch(self):
        oracle = IncrementalTriangleOracle(Graph(3, [(0, 1)]))
        delta = oracle.apply_batch(insert=[(0, 1)], delete=[(1, 2)])
        assert delta.inserted == () and delta.deleted == ()
        assert delta.created == () and delta.destroyed == ()
        assert delta.version == 1


class TestCompactionBoundary:
    def test_counts_survive_compaction(self):
        graph = gnp_random_graph(30, 0.3, seed=6)
        oracle = IncrementalTriangleOracle(graph, compact_threshold=4)
        edges = list(graph.edges())
        deltas = []
        for step in range(8):
            delete = [edges[step]]
            insert = [(step, (step + 15) % 30)]  # may be a no-op; that is fine
            deltas.append(oracle.apply_batch(insert=insert, delete=delete))
            assert_pinned(oracle)
        assert any(d.compacted for d in deltas)
        assert oracle.graph.compactions >= 1


class TestBatchDelta:
    def test_round_trips_through_dict(self):
        oracle = IncrementalTriangleOracle(Graph(3, [(0, 1), (1, 2)]))
        delta = oracle.apply_batch(insert=[(0, 2)])
        doc = delta.to_dict()
        assert BatchDelta.from_dict(doc) == delta

    def test_without_triangles(self):
        oracle = IncrementalTriangleOracle(Graph(3, [(0, 1), (1, 2)]))
        delta = oracle.apply_batch(insert=[(0, 2)])
        doc = delta.to_dict(include_triangles=False)
        assert "created" not in doc and "destroyed" not in doc
        assert doc["created_count"] == 1

    def test_node_count_validation(self):
        oracle = IncrementalTriangleOracle(Graph(3))
        with pytest.raises(GraphError, match="out of range"):
            oracle.node_count(3)
