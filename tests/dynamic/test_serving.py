"""In-process tests for the query server/client wire plane."""

import pytest

from repro.api import QuerySpec
from repro.dynamic import QueryClient, QueryServer, TriangleQueryEngine
from repro.dynamic.serving import SERVICE_NAME
from repro.errors import ServiceError
from repro.graphs import Graph
from repro.service.protocol import read_service_info, write_service_info


@pytest.fixture()
def server(tmp_path):
    engine = TriangleQueryEngine(
        Graph(4, [(0, 1), (0, 2), (1, 2)]), listing=True, compact_threshold=4
    )
    with QueryServer(tmp_path / "svc", engine) as running:
        yield running


class TestRoundTrip:
    def test_query_apply_query(self, server):
        with QueryClient.connect(server.root, timeout=10) as client:
            before = client.query(QuerySpec(kind="count"))
            assert before.version == 0
            assert before.payload["triangles"] == 1
            delta = client.apply(insert=[(0, 3), (1, 3)])
            assert delta["version"] == 1
            after = client.query(QuerySpec(kind="count"))
            assert after.version == 1
            assert after.payload["triangles"] == 2  # (0,1,3) joined (0,1,2)

    def test_listing_delta_streams_triangles(self, server):
        with QueryClient.connect(server.root, timeout=10) as client:
            client.apply(insert=[(0, 3), (1, 3)])
            result = client.query(QuerySpec(kind="delta-since", params={"version": 0}))
            (batch,) = result.payload["batches"]
            assert batch["created"] == [[0, 1, 3]]

    def test_status_and_verify(self, server):
        with QueryClient.connect(server.root, timeout=10) as client:
            status = client.status()
            assert status["service"] == SERVICE_NAME
            assert status["triangles"] == 1
            verified = client.verify()
            assert verified["type"] == "verified"

    def test_discovery_document(self, server):
        info = read_service_info(server.root)
        assert info["service"] == SERVICE_NAME
        assert "address" in info

    def test_error_frame_keeps_connection(self, server):
        with QueryClient.connect(server.root, timeout=10) as client:
            with pytest.raises(ServiceError, match="unknown query kind"):
                client.request({"type": "query", "spec": {"kind": "nope"}})
            with pytest.raises(ServiceError, match="unknown frame type"):
                client.request({"type": "lease"})
            with pytest.raises(ServiceError, match="both insert and delete"):
                client.request(
                    {"type": "apply", "insert": [[0, 3]], "delete": [[0, 3]]}
                )
            # The same connection still answers.
            assert client.query(QuerySpec(kind="count")).payload["triangles"] == 1

    def test_malformed_apply_payload(self, server):
        with QueryClient.connect(server.root, timeout=10) as client:
            with pytest.raises(ServiceError, match="edge lists"):
                client.request({"type": "apply", "insert": 7, "delete": []})
            with pytest.raises(ServiceError, match="pairs"):
                client.request({"type": "apply", "insert": [[0, 1, 2]], "delete": []})


class TestLifecycle:
    def test_shutdown_removes_discovery(self, tmp_path):
        engine = TriangleQueryEngine(Graph(3, [(0, 1)]))
        server = QueryServer(tmp_path / "svc", engine)
        server.start()
        with QueryClient.connect(server.root, timeout=10) as client:
            client.shutdown()
        server.wait()
        server.stop()
        assert not (server.root / "service.json").exists()

    def test_client_refuses_non_query_service(self, tmp_path):
        # A discovery file without the query marker (e.g. the experiment
        # dispatcher's) must be refused before any verbs are spoken.
        engine = TriangleQueryEngine(Graph(3, [(0, 1)]))
        server = QueryServer(tmp_path / "svc", engine)
        server.start()
        try:
            info = read_service_info(server.root)
            write_service_info(server.root, {k: v for k, v in info.items() if k != "service"})
            with pytest.raises(ServiceError, match="not a triangle query service"):
                QueryClient(server.root)
        finally:
            server.stop()

    def test_concurrent_ingest_and_reader_clients(self, server):
        """Two connections: one applies batches, one reads monotone versions."""
        with QueryClient.connect(server.root, timeout=10) as writer, QueryClient.connect(
            server.root, timeout=10
        ) as reader:
            seen = []
            for step in range(5):
                writer.apply(insert=[(0, 3)] if step % 2 == 0 else [], delete=[(0, 3)] if step % 2 else [])
                seen.append(reader.query(QuerySpec(kind="count")).version)
            assert seen == sorted(seen)
            assert seen[-1] == 5
