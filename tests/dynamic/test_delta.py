"""Unit tests for the delta/overlay layer."""

import numpy as np
import pytest

from repro.dynamic import DeltaGraph, DeltaSnapshot
from repro.dynamic.delta import canonical_batch_keys, decode_edge_keys, in_sorted
from repro.errors import GraphError
from repro.graphs import Graph, gnp_random_graph


def triangle_graph():
    return Graph(4, [(0, 1), (0, 2), (1, 2)])


class TestCanonicalBatchKeys:
    def test_orders_and_dedupes(self):
        keys = canonical_batch_keys([(3, 1), (1, 3), (0, 2)], 5)
        assert decode_edge_keys(keys, 5) == [(0, 2), (1, 3)]
        assert list(keys) == sorted(keys)

    def test_rejects_self_loops(self):
        with pytest.raises(GraphError, match="self-loop"):
            canonical_batch_keys([(2, 2)], 5)

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError, match="out of range"):
            canonical_batch_keys([(0, 5)], 5)
        with pytest.raises(GraphError, match="out of range"):
            canonical_batch_keys([(-1, 2)], 5)

    def test_rejects_malformed(self):
        with pytest.raises(GraphError, match="pairs"):
            canonical_batch_keys([(0, 1, 2)], 5)
        with pytest.raises(GraphError, match="pairs"):
            canonical_batch_keys(["xy"], 5)

    def test_empty_batch(self):
        assert canonical_batch_keys([], 5).size == 0


class TestInSorted:
    def test_membership(self):
        hay = np.array([2, 5, 9], dtype=np.int64)
        needles = np.array([1, 2, 5, 8, 9, 11], dtype=np.int64)
        assert list(in_sorted(hay, needles)) == [False, True, True, False, True, False]

    def test_empty_sides(self):
        empty = np.empty(0, dtype=np.int64)
        assert in_sorted(empty, np.array([1], dtype=np.int64)).tolist() == [False]
        assert in_sorted(np.array([1], dtype=np.int64), empty).size == 0


class TestDeltaSnapshot:
    def test_neighbors_merge_overlay(self):
        delta = DeltaGraph(triangle_graph())
        snap, _, _ = delta.apply_batch(insert=[(0, 3)], delete=[(0, 1)])
        assert snap.neighbors(0).tolist() == [2, 3]
        assert snap.neighbors(1).tolist() == [2]
        assert snap.has_edge(0, 3) and snap.has_edge(3, 0)
        assert not snap.has_edge(0, 1)
        assert snap.num_edges == 3

    def test_degree_matches_neighbors(self):
        delta = DeltaGraph(gnp_random_graph(20, 0.3, seed=1))
        snap, _, _ = delta.apply_batch(insert=[(0, 1), (2, 17)], delete=[(0, 2)])
        for node in range(20):
            assert snap.degree(node) == snap.neighbors(node).size

    def test_common_neighbors(self):
        delta = DeltaGraph(triangle_graph())
        snap, _, _ = delta.apply_batch(insert=[(0, 3), (1, 3)])
        assert snap.common_neighbors(0, 1).tolist() == [2, 3]

    def test_self_loop_has_no_edge(self):
        snap = DeltaGraph(triangle_graph()).snapshot
        assert not snap.has_edge(1, 1)

    def test_node_range_checked(self):
        snap = DeltaGraph(triangle_graph()).snapshot
        with pytest.raises(GraphError, match="out of range"):
            snap.neighbors(4)


class TestApplyBatch:
    def test_versions_are_monotone(self):
        delta = DeltaGraph(triangle_graph())
        assert delta.version == 0
        delta.apply_batch(insert=[(0, 3)])
        assert delta.version == 1
        delta.apply_batch()  # empty batches still version
        assert delta.version == 2

    def test_effective_filtering(self):
        delta = DeltaGraph(triangle_graph())
        _, ins, dels = delta.apply_batch(insert=[(0, 1), (0, 3)], delete=[(1, 3)])
        # (0,1) already present, (1,3) absent: both are no-ops.
        assert decode_edge_keys(ins, 4) == [(0, 3)]
        assert dels.size == 0

    def test_insert_and_delete_same_edge_rejected(self):
        delta = DeltaGraph(triangle_graph())
        with pytest.raises(GraphError, match="both insert and delete"):
            delta.apply_batch(insert=[(1, 3)], delete=[(3, 1)])

    def test_delete_then_reinsert_base_edge(self):
        delta = DeltaGraph(triangle_graph())
        delta.apply_batch(delete=[(0, 1)])
        assert not delta.snapshot.has_edge(0, 1)
        snap, ins, _ = delta.apply_batch(insert=[(0, 1)])
        # Reinsert un-tombstones the base edge rather than growing the overlay.
        assert snap.has_edge(0, 1)
        assert snap.overlay_size == 0
        assert decode_edge_keys(ins, 4) == [(0, 1)]

    def test_insert_then_delete_overlay_edge(self):
        delta = DeltaGraph(triangle_graph())
        delta.apply_batch(insert=[(0, 3)])
        snap, _, dels = delta.apply_batch(delete=[(0, 3)])
        assert snap.overlay_size == 0
        assert decode_edge_keys(dels, 4) == [(0, 3)]

    def test_snapshots_are_immutable_history(self):
        delta = DeltaGraph(triangle_graph())
        before = delta.snapshot
        delta.apply_batch(delete=[(0, 1)])
        assert before.has_edge(0, 1)          # old snapshot unchanged
        assert not delta.snapshot.has_edge(0, 1)

    def test_compaction_threshold(self):
        delta = DeltaGraph(Graph(30, [(10, 11)]), compact_threshold=3)
        delta.apply_batch(insert=[(0, 1), (0, 2)])
        assert delta.compactions == 0
        delta.apply_batch(insert=[(0, 3), (0, 4)])
        assert delta.compactions == 1
        assert delta.snapshot.overlay_size == 0
        assert delta.num_edges == 5

    def test_bad_threshold_rejected(self):
        with pytest.raises(GraphError, match="compact_threshold"):
            DeltaGraph(triangle_graph(), compact_threshold=0)


class TestCompactionDeterminism:
    def test_compaction_is_byte_deterministic(self):
        """Two histories reaching the same logical graph compact identically."""
        base = Graph(6, [(0, 1), (1, 2), (3, 4)])

        a = DeltaGraph(base)
        a.apply_batch(insert=[(0, 2), (2, 3)], delete=[(0, 1)])
        a.apply_batch(insert=[(0, 1)], delete=[(0, 2)])

        b = DeltaGraph(base)
        b.apply_batch(insert=[(2, 3)])
        b.apply_batch()

        csr_a = a.snapshot.compact()
        csr_b = b.snapshot.compact()
        assert csr_a.indptr.tobytes() == csr_b.indptr.tobytes()
        assert csr_a.indices.tobytes() == csr_b.indices.tobytes()
        assert csr_a.edge_u.tobytes() == csr_b.edge_u.tobytes()
        assert csr_a.edge_v.tobytes() == csr_b.edge_v.tobytes()

    def test_compact_equals_materialize(self):
        delta = DeltaGraph(gnp_random_graph(25, 0.3, seed=7))
        delta.apply_batch(insert=[(0, 1), (5, 9)], delete=[(0, 2)])
        csr = delta.snapshot.compact()
        graph = delta.snapshot.materialize()
        assert graph.csr().indices.tobytes() == csr.indices.tobytes()
        assert graph.num_edges == delta.num_edges
