"""Tests for Algorithm A2 (Proposition 2, Figure 1): heavy-triangle listing."""

import math

import pytest

from repro.core import HeavyHashingLister, a2_edge_set_cap
from repro.core.a2_heavy import (
    _triangles_in_edge_set,
    expected_rounds,
    lemma1_success_probability,
)
from repro.graphs import (
    complete_graph,
    gnp_random_graph,
    heavy_edge_gadget,
    heavy_triangles,
    list_triangles,
    triangle_free_bipartite,
)


class TestA2Basics:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HeavyHashingLister(epsilon=2.0)
        with pytest.raises(ValueError):
            HeavyHashingLister(epsilon=0.5, independence=1)

    def test_parameters_recorded(self):
        result = HeavyHashingLister(epsilon=0.5).run(complete_graph(6), seed=1)
        assert result.parameters == {
            "epsilon": 0.5,
            "independence": 3,
            "kernel": "batched",
            "backend": "numpy",
            "chunk_bytes": None,
        }

    def test_name_and_model(self):
        result = HeavyHashingLister(epsilon=0.5).run(complete_graph(4), seed=0)
        assert result.algorithm == "A2-heavy-hashing"
        assert result.model == "CONGEST"


class TestTrianglesInEdgeSet:
    def test_empty(self):
        assert _triangles_in_edge_set(set()) == []

    def test_single_triangle(self):
        assert _triangles_in_edge_set({(0, 1), (1, 2), (0, 2)}) == [(0, 1, 2)]

    def test_missing_edge_no_triangle(self):
        assert _triangles_in_edge_set({(0, 1), (1, 2)}) == []

    def test_two_triangles_sharing_edge(self):
        edges = {(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)}
        assert set(_triangles_in_edge_set(edges)) == {(0, 1, 2), (1, 2, 3)}


class TestA2Soundness:
    @pytest.mark.parametrize("seed", range(5))
    def test_only_real_triangles_reported(self, seed):
        graph = gnp_random_graph(25, 0.4, seed=seed)
        result = HeavyHashingLister(epsilon=0.4).run(graph, seed=seed)
        result.check_soundness(graph)

    def test_triangle_free_graph_reports_nothing(self):
        graph = triangle_free_bipartite(18, 0.6, seed=2)
        result = HeavyHashingLister(epsilon=0.2).run(graph, seed=2)
        assert not result.found_any()


class TestA2Completeness:
    def test_epsilon_zero_lists_everything(self):
        # With epsilon 0 the hash range is a single bucket, so every edge is
        # forwarded to every neighbour (the cap 8 + 4n never binds) and every
        # triangle is seen by each of its vertices.
        graph = gnp_random_graph(18, 0.4, seed=7)
        result = HeavyHashingLister(epsilon=0.0).run(graph, seed=7)
        assert result.triangles_found() == set(list_triangles(graph))

    def test_heavy_gadget_triangles_found_with_good_rate(self):
        # Edge (0, 1) of the gadget has support 20 on 30 nodes.  With
        # n^eps = 9 < 20 the triangles through that edge are eps-heavy, and
        # Proposition 2 promises each is listed with constant probability per
        # run; across seeds the average per-triangle hit rate must be
        # bounded away from zero.
        graph, _ = heavy_edge_gadget(30, 20, seed=0)
        epsilon = math.log(9) / math.log(30)
        heavy = heavy_triangles(graph, epsilon)
        assert heavy  # sanity: the workload does contain heavy triangles
        hits = 0
        trials = 15
        for seed in range(trials):
            found = HeavyHashingLister(epsilon=epsilon).run(graph, seed=seed).triangles_found()
            hits += sum(1 for t in heavy if t in found)
        hit_rate = hits / (trials * len(heavy))
        assert hit_rate >= 0.2

    def test_lemma1_probability_helper(self):
        assert lemma1_success_probability(100, 0.0) == pytest.approx(0.75)
        assert lemma1_success_probability(16, 0.5) == pytest.approx(3 / 16)
        with pytest.raises(ValueError):
            lemma1_success_probability(16, 2.0)


class TestA2RoundComplexity:
    def test_rounds_bounded_by_cap(self):
        # Step 2 ships at most (8 + 4n/range) edges of 2 id_bits each per
        # link; step 1 is a constant number of rounds.
        epsilon = 0.5
        n = 36
        graph = gnp_random_graph(n, 0.5, seed=5)
        result = HeavyHashingLister(epsilon=epsilon).run(graph, seed=5)
        step2_cap_rounds = 2 * math.ceil(a2_edge_set_cap(n, epsilon))
        assert result.rounds <= step2_cap_rounds + 5

    def test_higher_epsilon_means_fewer_rounds_on_dense_graphs(self):
        graph = gnp_random_graph(40, 0.6, seed=6)
        coarse = HeavyHashingLister(epsilon=0.9).run(graph, seed=6)
        fine = HeavyHashingLister(epsilon=0.1).run(graph, seed=6)
        assert coarse.rounds <= fine.rounds

    def test_expected_rounds_helper(self):
        assert expected_rounds(100, 0.5) == pytest.approx(2 * (8 + 400 / 3))

    def test_hash_phase_is_constant_rounds(self):
        # The hash-description phase must not scale with n: its cost is the
        # encoding size over the bandwidth, both Theta(log n).
        for n in (16, 64, 256):
            graph = gnp_random_graph(n, 2.0 / n, seed=n)
            result = HeavyHashingLister(epsilon=0.5).run(graph, seed=n)
            phase_rounds = result.metrics.rounds_by_phase_name()[
                "A2:send-hash-functions"
            ]
            assert phase_rounds <= 4
