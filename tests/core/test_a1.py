"""Tests for Algorithm A1 (Proposition 1): heavy-triangle finding by sampling."""

import math

import pytest

from repro.core import HeavySamplingFinder, a1_sample_cap
from repro.core.a1_sampling import expected_rounds, single_run_success_probability
from repro.graphs import (
    complete_graph,
    gnp_random_graph,
    heavy_edge_gadget,
    list_triangles,
    triangle_free_bipartite,
)


class TestA1Basics:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            HeavySamplingFinder(epsilon=1.5)
        with pytest.raises(ValueError):
            HeavySamplingFinder(epsilon=-0.1)

    def test_invalid_cap_constant(self):
        with pytest.raises(ValueError):
            HeavySamplingFinder(epsilon=0.5, sample_cap_constant=0.0)

    def test_parameters_recorded(self):
        result = HeavySamplingFinder(epsilon=0.25).run(complete_graph(5), seed=1)
        assert result.parameters["epsilon"] == 0.25

    def test_model_and_name(self):
        result = HeavySamplingFinder(epsilon=0.0).run(complete_graph(4), seed=0)
        assert result.model == "CONGEST"
        assert result.algorithm == "A1-heavy-sampling"


class TestA1Soundness:
    @pytest.mark.parametrize("seed", range(5))
    def test_only_real_triangles_reported(self, seed):
        graph = gnp_random_graph(25, 0.4, seed=seed)
        result = HeavySamplingFinder(epsilon=0.3).run(graph, seed=seed)
        result.check_soundness(graph)

    def test_triangle_free_graph_reports_nothing(self, bipartite_graph):
        result = HeavySamplingFinder(epsilon=0.0).run(bipartite_graph, seed=1)
        assert not result.found_any()

    def test_empty_graph(self):
        from repro.graphs import Graph

        result = HeavySamplingFinder(epsilon=0.5).run(Graph(5), seed=1)
        assert not result.found_any()
        assert result.rounds == 0


class TestA1Completeness:
    def test_epsilon_zero_is_exhaustive(self):
        # With epsilon 0 every neighbour is sampled (probability 1) and the
        # cap 4n is never binding, so A1 degenerates to the full 2-hop
        # exchange and finds every triangle.
        graph = gnp_random_graph(20, 0.4, seed=3)
        result = HeavySamplingFinder(epsilon=0.0).run(graph, seed=3)
        assert result.triangles_found() == set(list_triangles(graph))

    def test_finds_heavy_triangle_on_gadget_with_high_probability(self):
        # Edge (0, 1) has support 16 on a 24-node gadget; with epsilon such
        # that n^eps <= 16 the triangle guarantee of Proposition 1 applies.
        graph, _ = heavy_edge_gadget(24, 16, seed=0)
        epsilon = math.log(8) / math.log(24)
        successes = sum(
            1
            for seed in range(20)
            if HeavySamplingFinder(epsilon=epsilon).run(graph, seed=seed).found_any()
        )
        # Single-run success is constant; over 20 seeds we expect a clear
        # majority of successes.
        assert successes >= 12

    def test_success_probability_helper_monotone(self):
        low = single_run_success_probability(4, 100, 0.5)
        high = single_run_success_probability(40, 100, 0.5)
        assert 0.0 <= low <= high <= 1.0
        assert single_run_success_probability(0, 100, 0.5) == 0.0


class TestA1RoundComplexity:
    def test_rounds_bounded_by_cap(self):
        # The per-link payload is capped at 4 n^{1-eps} identifiers, i.e. the
        # phase can cost at most that many rounds (one identifier per round).
        epsilon = 0.5
        graph = gnp_random_graph(36, 0.5, seed=2)
        result = HeavySamplingFinder(epsilon=epsilon).run(graph, seed=2)
        assert result.rounds <= math.ceil(a1_sample_cap(36, epsilon)) + 1

    def test_higher_epsilon_means_fewer_rounds(self):
        graph = gnp_random_graph(40, 0.5, seed=4)
        sparse = HeavySamplingFinder(epsilon=0.8).run(graph, seed=4)
        dense = HeavySamplingFinder(epsilon=0.1).run(graph, seed=4)
        assert sparse.rounds <= dense.rounds

    def test_expected_rounds_helper(self):
        assert expected_rounds(100, 0.5) == pytest.approx(40.0)

    def test_oversized_samples_are_withheld(self):
        # With epsilon 0 on a dense graph every sample is the full
        # neighbourhood; the cap is 4n so nothing is withheld.  With a tiny
        # artificial cap nothing can be sent, so nothing is found.
        graph = complete_graph(12)
        finder = HeavySamplingFinder(epsilon=0.0, sample_cap_constant=0.01)
        result = finder.run(graph, seed=0)
        assert not result.found_any()
        assert result.rounds == 0
