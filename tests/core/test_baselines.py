"""Tests for the naive two-hop / local-listing baseline."""

import pytest

from repro.analysis import local_listing_complete
from repro.core import LocalListing, NaiveTwoHopListing, naive_round_bound
from repro.graphs import (
    Graph,
    complete_graph,
    gnp_random_graph,
    list_triangles,
    triangle_free_bipartite,
    triangles_through_node,
)


class TestNaiveCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_lists_every_triangle(self, seed):
        graph = gnp_random_graph(24, 0.4, seed=seed)
        result = NaiveTwoHopListing().run(graph, seed=seed)
        result.check_soundness(graph)
        assert result.solves_listing(graph)

    def test_triangle_free(self):
        graph = triangle_free_bipartite(20, 0.5, seed=1)
        result = NaiveTwoHopListing().run(graph, seed=1)
        assert not result.found_any()

    def test_empty_graph(self):
        result = NaiveTwoHopListing().run(Graph(3), seed=0)
        assert not result.found_any()
        assert result.rounds == 0

    def test_every_node_outputs_exactly_its_own_triangles(self):
        # The naive exchange is a *local* listing algorithm: node i outputs
        # precisely the triangles containing i.
        graph = gnp_random_graph(20, 0.4, seed=2)
        result = NaiveTwoHopListing().run(graph, seed=2)
        for node in graph.nodes():
            assert set(result.output.node_output(node)) == set(
                triangles_through_node(graph, node)
            )
        assert local_listing_complete(result, graph)

    def test_local_listing_alias(self):
        graph = complete_graph(5)
        result = LocalListing().run(graph, seed=0)
        assert result.algorithm == "local-listing"
        assert result.solves_listing(graph)


class TestNaiveCost:
    def test_rounds_equal_max_degree(self):
        # Each node ships its whole neighbourhood (one identifier per round
        # over each link), so the phase cost is exactly d_max.
        graph = gnp_random_graph(30, 0.4, seed=3)
        result = NaiveTwoHopListing().run(graph, seed=3)
        assert result.rounds == graph.max_degree()

    def test_rounds_on_complete_graph_are_linear(self):
        graph = complete_graph(20)
        result = NaiveTwoHopListing().run(graph, seed=0)
        assert result.rounds == 19

    def test_round_bound_helper(self):
        assert naive_round_bound(17) == 17.0

    def test_cost_independent_of_seed(self):
        # The baseline is deterministic: its cost must not vary with the
        # simulator seed.
        graph = gnp_random_graph(25, 0.4, seed=4)
        first = NaiveTwoHopListing().run(graph, seed=1)
        second = NaiveTwoHopListing().run(graph, seed=99)
        assert first.rounds == second.rounds
        assert first.triangles_found() == second.triangles_found()

    def test_parameters_describe_local_output(self):
        result = NaiveTwoHopListing().run(complete_graph(4), seed=0)
        assert result.parameters == {"local_output_only": True}
