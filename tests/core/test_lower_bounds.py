"""Tests for the lower-bound machinery (Theorem 3, Proposition 5, Lemmas 4-5)."""

import math

import pytest

from repro.congest import BandwidthPolicy
from repro.core import (
    DolevCliqueListing,
    NaiveTwoHopListing,
    TriangleListing,
    account_information,
    expected_triangles_gnp_half,
    node_receive_capacity_bits,
    proposition5_asymptotic_curve,
    proposition5_information_bound,
    proposition5_round_lower_bound,
    theorem3_asymptotic_curve,
    theorem3_information_bound,
    theorem3_round_lower_bound,
)
from repro.core.lower_bounds import (
    PROBABILITY_MARGIN,
    initial_knowledge_bits,
    rivin_edge_lower_bound_float,
)
from repro.graphs import gnp_random_graph


class TestClosedFormFloors:
    def test_expected_triangles_formula(self):
        assert expected_triangles_gnp_half(8) == pytest.approx(8 * 7 * 6 / 6 / 8)

    def test_probability_margin_positive(self):
        assert PROBABILITY_MARGIN == pytest.approx(1 / 15 - 1 / 32)
        assert PROBABILITY_MARGIN > 0

    def test_information_bound_grows_like_n_to_four_thirds(self):
        small = theorem3_information_bound(1000)
        large = theorem3_information_bound(2000)
        # Doubling n should multiply the bound by about 2^{4/3}.
        assert large / small == pytest.approx(2 ** (4 / 3), rel=0.05)

    def test_information_bound_tiny_networks(self):
        assert theorem3_information_bound(2) == 0.0

    def test_proposition5_information_bound(self):
        n = 100
        expected = (n * (n - 1) / 2 / 16) * PROBABILITY_MARGIN
        assert proposition5_information_bound(n) == pytest.approx(expected)
        assert proposition5_information_bound(1) == 0.0

    def test_receive_capacity(self):
        policy = BandwidthPolicy(minimum_bits=1)
        assert node_receive_capacity_bits(101, policy) == 100 * 7
        assert node_receive_capacity_bits(1, policy) >= 1

    def test_initial_knowledge(self):
        assert initial_knowledge_bits(101) == 100.0
        assert initial_knowledge_bits(1) == 0.0

    def test_round_floors_nonnegative_and_eventually_positive(self):
        # With the paper's explicit constants the floors only exceed the
        # initial-knowledge correction at very large n; the asymptotic shape
        # is covered by test_information_bound_grows_like_n_to_four_thirds.
        assert theorem3_round_lower_bound(10) >= 0.0
        assert theorem3_round_lower_bound(10**13) > 0.0
        assert proposition5_round_lower_bound(10) >= 0.0
        assert proposition5_round_lower_bound(10**5) > 1.0

    def test_local_listing_floor_dominates_global_floor(self):
        # Proposition 5 is a strictly stronger requirement, so its floor is
        # higher for every large enough n.
        for n in (10**3, 10**4, 10**5):
            assert proposition5_round_lower_bound(n) >= theorem3_round_lower_bound(n)

    def test_asymptotic_curves(self):
        assert theorem3_asymptotic_curve(4096) == pytest.approx(16.0 / 12.0)
        assert proposition5_asymptotic_curve(1024) == pytest.approx(102.4)

    def test_rivin_float_bound(self):
        assert rivin_edge_lower_bound_float(0) == 0.0
        assert rivin_edge_lower_bound_float(8) == pytest.approx(math.sqrt(2) / 3 * 4)


class TestEmpiricalAccounting:
    @pytest.fixture(scope="class")
    def gnp_half_instance(self):
        return gnp_random_graph(28, 0.5, seed=123)

    def test_accounting_on_listing_run(self, gnp_half_instance):
        graph = gnp_half_instance
        result = TriangleListing(repetitions=1, epsilon=0.5).run(graph, seed=1)
        accounting = account_information(result, graph)
        assert accounting.num_nodes == graph.num_nodes
        assert accounting.rivin_holds
        assert accounting.respects_floor
        assert accounting.measured_rounds == result.rounds
        assert accounting.covered_edges <= graph.num_edges

    def test_accounting_on_naive_run(self, gnp_half_instance):
        graph = gnp_half_instance
        result = NaiveTwoHopListing().run(graph, seed=2)
        accounting = account_information(result, graph)
        assert accounting.rivin_holds
        assert accounting.respects_floor
        # The naive baseline's busiest node covers all its incident triangle
        # edges, which is a sizeable fraction of the graph.
        assert accounting.covered_edges > 0

    def test_accounting_on_clique_run(self, gnp_half_instance):
        graph = gnp_half_instance
        result = DolevCliqueListing().run(graph, seed=3)
        accounting = account_information(result, graph)
        assert accounting.rivin_holds
        assert accounting.respects_floor

    def test_accounting_with_empty_output(self):
        graph = gnp_random_graph(10, 0.0, seed=1)
        result = NaiveTwoHopListing().run(graph, seed=1)
        accounting = account_information(result, graph)
        assert accounting.busiest_node is None
        assert accounting.covered_edges == 0
        assert accounting.round_floor == 0.0

    def test_summary_text(self, gnp_half_instance):
        graph = gnp_half_instance
        result = NaiveTwoHopListing().run(graph, seed=4)
        summary = account_information(result, graph).summary()
        assert "busiest node" in summary
        assert "measured rounds" in summary
