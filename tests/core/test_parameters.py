"""Unit tests for the paper's parameter-selection formulas."""

import math

import pytest

from repro.core import (
    FindingParameters,
    ListingParameters,
    a1_sample_cap,
    a1_sampling_probability,
    a2_edge_set_cap,
    a2_hash_range,
    a3_goodness_threshold,
    a3_landmark_probability,
    a3_round_budget,
    finding_epsilon,
    finding_epsilon_asymptotic,
    finding_repetitions,
    heaviness_threshold_finding,
    heaviness_threshold_listing,
    listing_epsilon,
    listing_epsilon_asymptotic,
    listing_repetitions,
)
from repro.errors import AnalysisError


class TestEpsilonSelection:
    def test_thresholds_clamped_at_one_for_small_n(self):
        # At simulator-scale n the polylog factors dominate, so the exact
        # formulas clamp to 1 (epsilon 0).
        assert heaviness_threshold_listing(100) == 1.0
        assert listing_epsilon(100) == 0.0

    def test_finding_threshold_grows_eventually(self):
        assert heaviness_threshold_finding(10**6) > 10
        assert finding_epsilon(10**6) > 0.1

    def test_listing_threshold_grows_eventually(self):
        assert heaviness_threshold_listing(10**9) > 10
        assert listing_epsilon(10**9) > 0.1

    def test_asymptotic_epsilons(self):
        assert finding_epsilon_asymptotic() == pytest.approx(1.0 / 3.0)
        assert listing_epsilon_asymptotic() == pytest.approx(0.5)

    def test_epsilon_always_in_unit_interval(self):
        for n in (2, 10, 100, 10**4, 10**8, 10**12):
            assert 0.0 <= finding_epsilon(n) <= 1.0
            assert 0.0 <= listing_epsilon(n) <= 1.0

    def test_invalid_sizes(self):
        with pytest.raises(AnalysisError):
            heaviness_threshold_finding(0)
        with pytest.raises(AnalysisError):
            heaviness_threshold_listing(0)


class TestComponentParameters:
    def test_a1_probability_formula(self):
        assert a1_sampling_probability(100, 0.5) == pytest.approx(0.1)
        assert a1_sampling_probability(100, 0.0) == 1.0

    def test_a1_cap_formula(self):
        assert a1_sample_cap(100, 0.5) == pytest.approx(40.0)

    def test_a2_hash_range(self):
        assert a2_hash_range(100, 0.5) == 3  # floor(100^0.25)
        assert a2_hash_range(100, 0.0) == 1

    def test_a2_edge_cap(self):
        assert a2_edge_set_cap(100, 0.5) == pytest.approx(8 + 400 / 3)

    def test_a3_landmark_probability(self):
        assert a3_landmark_probability(100, 0.5) == pytest.approx(1 / 90)
        assert a3_landmark_probability(1, 0.0) == pytest.approx(1 / 9)

    def test_a3_goodness_threshold(self):
        expected = math.sqrt(54 * 100**1.5 * math.log2(100))
        assert a3_goodness_threshold(100, 0.5) == pytest.approx(expected)

    def test_a3_round_budget_positive_and_monotone_in_constant(self):
        small = a3_round_budget(100, 0.5, budget_constant=1.0)
        large = a3_round_budget(100, 0.5, budget_constant=10.0)
        assert 0 < small < large

    def test_invalid_epsilon_rejected(self):
        for function in (
            lambda: a1_sampling_probability(10, 2.0),
            lambda: a1_sample_cap(10, -0.1),
            lambda: a2_hash_range(10, 1.5),
            lambda: a3_landmark_probability(10, -1.0),
            lambda: a3_goodness_threshold(10, 1.1),
            lambda: a3_round_budget(10, 2.0),
        ):
            with pytest.raises(AnalysisError):
                function()

    def test_invalid_budget_constant(self):
        with pytest.raises(AnalysisError):
            a3_round_budget(10, 0.5, budget_constant=0.0)


class TestRepetitions:
    def test_listing_repetitions_logarithmic(self):
        assert listing_repetitions(2) == 1
        assert listing_repetitions(1024) == 10
        assert listing_repetitions(1024, repetition_constant=2.0) == 20

    def test_listing_repetitions_invalid_constant(self):
        with pytest.raises(AnalysisError):
            listing_repetitions(10, repetition_constant=0.0)

    def test_finding_repetitions_amplification(self):
        # With single-run success 0.25, nine repetitions reach 90%.
        assert finding_repetitions(0.9, 0.25) == 9
        assert finding_repetitions(0.99, 0.5) == 7

    def test_finding_repetitions_invalid(self):
        with pytest.raises(AnalysisError):
            finding_repetitions(1.5, 0.5)
        with pytest.raises(AnalysisError):
            finding_repetitions(0.9, 0.0)


class TestParameterBundles:
    def test_finding_parameters_defaults(self):
        params = FindingParameters.for_graph_size(200)
        assert params.num_nodes == 200
        assert params.epsilon == finding_epsilon(200)
        assert params.repetitions >= 1
        assert params.round_budget > 0

    def test_finding_parameters_epsilon_override(self):
        params = FindingParameters.for_graph_size(200, epsilon=1.0 / 3.0)
        assert params.epsilon == pytest.approx(1.0 / 3.0)
        assert params.heaviness_threshold == pytest.approx(200 ** (1.0 / 3.0))

    def test_listing_parameters_defaults(self):
        params = ListingParameters.for_graph_size(200)
        assert params.hash_range >= 1
        assert params.repetitions == listing_repetitions(200)

    def test_listing_parameters_epsilon_override(self):
        params = ListingParameters.for_graph_size(256, epsilon=0.5)
        assert params.hash_range == 4  # floor(256^0.25)

    def test_explicit_repetitions_respected(self):
        assert FindingParameters.for_graph_size(100, repetitions=3).repetitions == 3
        assert ListingParameters.for_graph_size(100, repetitions=2).repetitions == 2

    def test_invalid_epsilon_override(self):
        with pytest.raises(AnalysisError):
            FindingParameters.for_graph_size(100, epsilon=1.5)
