"""Tests for the Dolev et al. CONGEST-clique listing baseline."""

import math

import pytest

from repro.core import DolevCliqueListing, dolev_round_bound
from repro.core.clique_dolev import (
    group_triples,
    partition_into_groups,
    responsible_node,
)
from repro.graphs import (
    Graph,
    complete_graph,
    gnp_random_graph,
    triangle_free_bipartite,
)


class TestPartitioning:
    def test_partition_is_balanced_and_monotone(self):
        groups = partition_into_groups(30, 3)
        assert len(groups) == 30
        assert set(groups) == {0, 1, 2}
        assert groups == sorted(groups)
        sizes = [groups.count(g) for g in range(3)]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_single_group(self):
        assert set(partition_into_groups(10, 1)) == {0}

    def test_partition_invalid(self):
        with pytest.raises(ValueError):
            partition_into_groups(10, 0)

    def test_group_triples_count(self):
        k = 4
        triples = group_triples(k)
        assert len(triples) == math.comb(k + 2, 3)
        assert all(a <= b <= c for a, b, c in triples)

    def test_responsible_node_round_robin(self):
        assert responsible_node(0, 10) == 0
        assert responsible_node(13, 10) == 3


class TestDolevCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_lists_every_triangle(self, seed):
        graph = gnp_random_graph(26, 0.4, seed=seed)
        result = DolevCliqueListing().run(graph, seed=seed)
        result.check_soundness(graph)
        assert result.solves_listing(graph)

    def test_complete_graph(self):
        graph = complete_graph(12)
        result = DolevCliqueListing().run(graph, seed=0)
        assert result.solves_listing(graph)

    def test_triangle_free(self):
        graph = triangle_free_bipartite(20, 0.6, seed=1)
        result = DolevCliqueListing().run(graph, seed=1)
        assert not result.found_any()

    def test_empty_graph(self):
        result = DolevCliqueListing().run(Graph(5), seed=0)
        assert not result.found_any()
        assert result.rounds == 0

    def test_explicit_group_count(self):
        graph = gnp_random_graph(20, 0.4, seed=2)
        result = DolevCliqueListing(group_count=2).run(graph, seed=2)
        assert result.solves_listing(graph)
        assert result.parameters["group_count"] == 2

    def test_single_group_degenerates_to_one_responsible_node(self):
        graph = gnp_random_graph(15, 0.4, seed=3)
        result = DolevCliqueListing(group_count=1).run(graph, seed=3)
        assert result.solves_listing(graph)
        # With one group there is one triple, so exactly one node reports.
        reporting = [
            node for node, out in result.output.per_node.items() if out
        ]
        assert len(reporting) <= 1

    def test_deterministic(self):
        graph = gnp_random_graph(20, 0.5, seed=5)
        first = DolevCliqueListing().run(graph, seed=1)
        second = DolevCliqueListing().run(graph, seed=77)
        assert first.rounds == second.rounds
        assert first.triangles_found() == second.triangles_found()


class TestDolevCost:
    def test_model_is_clique(self):
        graph = gnp_random_graph(18, 0.4, seed=1)
        result = DolevCliqueListing().run(graph, seed=1)
        assert result.model == "CONGEST clique"

    def test_cheaper_than_naive_on_dense_graphs(self):
        # The headline comparison of Table 1: the clique algorithm is
        # sublinear while the naive CONGEST exchange costs d_max rounds.
        from repro.core import NaiveTwoHopListing

        graph = gnp_random_graph(60, 0.5, seed=7)
        clique = DolevCliqueListing().run(graph, seed=7)
        naive = NaiveTwoHopListing().run(graph, seed=7)
        assert clique.rounds < naive.rounds

    def test_round_bound_helper_monotone(self):
        assert dolev_round_bound(1000) > dolev_round_bound(100)

    def test_invalid_routing_constant(self):
        from repro.errors import SimulationError

        graph = gnp_random_graph(10, 0.4, seed=0)
        with pytest.raises(SimulationError):
            DolevCliqueListing(routing_constant=0).run(graph, seed=0)


class TestConstructorValidation:
    """Bad public-API arguments fail at construction with ProtocolError."""

    def test_non_positive_group_count_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError, match="group_count"):
            DolevCliqueListing(group_count=0)

    def test_non_positive_routing_constant_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError, match="routing_constant"):
            DolevCliqueListing(routing_constant=0)

    def test_unknown_kernel_still_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            DolevCliqueListing(kernel="turbo")

    def test_valid_arguments_accepted(self):
        DolevCliqueListing(group_count=2, routing_constant=1)
        DolevCliqueListing()
