"""Tests for the Theorem-1 triangle-finding algorithm."""

import pytest

from repro.core import TriangleFinding, finding_epsilon_asymptotic, theorem1_round_bound
from repro.graphs import (
    Graph,
    complete_graph,
    gnp_random_graph,
    planted_triangle_graph,
    triangle_free_bipartite,
)


class TestFindingCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_finds_triangles_in_dense_graphs(self, seed):
        graph = gnp_random_graph(25, 0.4, seed=seed)
        result = TriangleFinding(repetitions=2).run(graph, seed=seed)
        result.check_soundness(graph)
        assert result.solves_finding(graph)

    def test_triangle_free_graph_answers_not_found(self):
        graph = triangle_free_bipartite(24, 0.5, seed=1)
        result = TriangleFinding(repetitions=2).run(graph, seed=1)
        assert not result.found_any()
        assert result.solves_finding(graph)

    def test_finds_planted_needles(self):
        # A nearly triangle-free graph with a handful of planted triangles is
        # the hard case for finding; amplification over the default
        # repetition count must locate one.
        graph, planted = planted_triangle_graph(30, 2, background_probability=0.3, seed=5)
        result = TriangleFinding().run(graph, seed=5)
        assert result.solves_finding(graph)

    def test_single_triangle_graph(self):
        result = TriangleFinding().run(complete_graph(3), seed=0)
        assert result.triangles_found() == {(0, 1, 2)}

    def test_empty_graph(self):
        result = TriangleFinding(repetitions=1).run(Graph(5), seed=0)
        assert not result.found_any()

    def test_stop_on_success_reduces_cost(self):
        graph = gnp_random_graph(25, 0.5, seed=3)
        eager = TriangleFinding(repetitions=4, stop_on_success=True).run(graph, seed=3)
        full = TriangleFinding(repetitions=4, stop_on_success=False).run(graph, seed=3)
        assert eager.found_any() and full.found_any()
        assert eager.rounds <= full.rounds


class TestFindingParameters:
    def test_parameters_for_exposes_epsilon(self):
        graph = gnp_random_graph(30, 0.3, seed=1)
        algorithm = TriangleFinding(epsilon=finding_epsilon_asymptotic())
        params = algorithm.parameters_for(graph)
        assert params.epsilon == pytest.approx(1.0 / 3.0)

    def test_result_records_parameters(self):
        graph = complete_graph(6)
        result = TriangleFinding(repetitions=1).run(graph, seed=0)
        assert "epsilon" in result.parameters
        assert result.parameters["repetitions"] == 1
        assert result.algorithm == "Theorem1-finding"
        assert result.model == "CONGEST"

    def test_round_bound_reference_curve(self):
        assert theorem1_round_bound(64) == pytest.approx(16.0 * 6 ** (2.0 / 3.0))
        assert theorem1_round_bound(1000) > theorem1_round_bound(100)


class TestFindingCost:
    def test_cost_is_sum_of_passes(self):
        graph = gnp_random_graph(20, 0.4, seed=2)
        one = TriangleFinding(repetitions=1).run(graph, seed=2)
        two = TriangleFinding(repetitions=2).run(graph, seed=2)
        assert two.rounds >= one.rounds

    def test_metrics_have_phases_from_both_components(self):
        graph = gnp_random_graph(20, 0.4, seed=2)
        result = TriangleFinding(repetitions=1).run(graph, seed=2)
        phase_names = {report.name for report in result.metrics.phases}
        assert any(name.startswith("A1:") for name in phase_names)
        assert any(name.startswith("A(X,r):") for name in phase_names)


class TestConstructorValidation:
    """Bad public-API arguments fail at construction with ProtocolError."""

    def test_zero_or_negative_repetitions_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError, match="repetitions"):
            TriangleFinding(repetitions=0)
        with pytest.raises(ProtocolError, match="repetitions"):
            TriangleFinding(repetitions=-3)

    def test_out_of_range_epsilon_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError, match="epsilon"):
            TriangleFinding(epsilon=-0.1)
        with pytest.raises(ProtocolError, match="epsilon"):
            TriangleFinding(epsilon=1.5)

    def test_non_positive_budget_constant_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError, match="budget_constant"):
            TriangleFinding(budget_constant=0)

    def test_unknown_kernel_still_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            TriangleFinding(kernel="turbo")

    def test_valid_arguments_accepted(self):
        TriangleFinding(repetitions=1, epsilon=0.0)
        TriangleFinding(repetitions=2, epsilon=1.0, budget_constant=0.5)
