"""Tests for the distributed triangle-counting extension."""

import pytest

from repro.core import TriangleCounting
from repro.errors import SimulationError
from repro.graphs import (
    Graph,
    barabasi_albert_graph,
    complete_graph,
    count_triangles,
    cycle_graph,
    gnp_random_graph,
    is_connected,
    local_triangle_count,
    lollipop_graph,
)


def connected_gnp(num_nodes: int, probability: float, seed: int) -> Graph:
    graph = gnp_random_graph(num_nodes, probability, seed=seed)
    if not is_connected(graph):
        pytest.skip("random instance not connected")
    return graph


class TestCountingCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_ground_truth_on_random_graphs(self, seed):
        graph = connected_gnp(22, 0.4, seed)
        result = TriangleCounting().run(graph, seed=seed)
        assert result.total_triangles == count_triangles(graph)

    def test_complete_graph(self):
        graph = complete_graph(10)
        result = TriangleCounting().run(graph, seed=0)
        assert result.total_triangles == 120

    def test_triangle_free_cycle(self):
        result = TriangleCounting().run(cycle_graph(9), seed=0)
        assert result.total_triangles == 0

    def test_per_node_counts_match_oracle(self):
        graph = barabasi_albert_graph(25, 3, seed=6)
        result = TriangleCounting().run(graph, seed=6)
        assert result.per_node_counts == local_triangle_count(graph)

    def test_lollipop(self):
        graph = lollipop_graph(6, 8)
        result = TriangleCounting().run(graph, seed=0)
        assert result.total_triangles == 20

    def test_disconnected_graph_rejected(self):
        graph = Graph(6, [(0, 1), (2, 3), (2, 4)])
        with pytest.raises(SimulationError):
            TriangleCounting().run(graph, seed=0)

    def test_root_choice_does_not_change_count(self):
        graph = connected_gnp(18, 0.4, 9)
        first = TriangleCounting(root=0).run(graph, seed=1)
        second = TriangleCounting(root=7).run(graph, seed=1)
        assert first.total_triangles == second.total_triangles


class TestCountingCostAndDissemination:
    def test_cost_at_least_naive_exchange(self):
        graph = connected_gnp(20, 0.5, 11)
        result = TriangleCounting().run(graph, seed=11)
        assert result.rounds >= graph.max_degree()

    def test_dissemination_reaches_every_node(self):
        graph = lollipop_graph(5, 5)
        counting = TriangleCounting(disseminate=True)
        result = counting.run(graph, seed=0)
        assert result.disseminated
        # Dissemination costs extra tree-depth rounds compared to the
        # non-disseminating run.
        plain = TriangleCounting(disseminate=False).run(graph, seed=0)
        assert result.rounds >= plain.rounds

    def test_summary_and_parameters(self):
        graph = complete_graph(6)
        counting = TriangleCounting(root=2, disseminate=True)
        result = counting.run(graph, seed=0)
        assert "total=20" in result.summary()
        assert counting.describe_parameters() == {"root": 2, "disseminate": True}
        assert result.root == 2
