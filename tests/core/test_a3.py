"""Tests for Algorithm A3 / A(X, r) (Proposition 3, Figure 2)."""

import math

import pytest

from repro.congest import CongestSimulator
from repro.core import LightTrianglesLister, a3_round_budget, run_axr
from repro.graphs import (
    Graph,
    complete_graph,
    gnp_random_graph,
    light_triangles,
    list_triangles,
    triangle_free_bipartite,
)


class TestAXRDirectly:
    """Tests of the inner A(X, r) procedure with an explicit landmark set."""

    def run_with_landmarks(self, graph, landmarks, threshold, seed=0):
        simulator = CongestSimulator(graph, seed=seed)
        for context in simulator.contexts:
            context.state["in_X"] = context.node_id in landmarks
        run_axr(simulator, threshold)
        return simulator

    def test_empty_landmarks_full_threshold_lists_everything(self):
        # With X empty, Delta(X) contains every pair, and with r >= n no set
        # is ever withheld: A(X, r) degenerates to a complete exchange of
        # candidate lists and must list every triangle.
        graph = gnp_random_graph(16, 0.4, seed=1)
        simulator = self.run_with_landmarks(graph, set(), threshold=20)
        found = set()
        for output in simulator.collect_outputs().values():
            found |= output
        assert found == set(list_triangles(graph))

    def test_landmark_suppresses_covered_triangles(self):
        # K4 with landmark node 3: every pair of {0,1,2} has common
        # neighbour 3 in X, so the triangle (0,1,2)'s edges are all outside
        # Delta(X)... (0,1) has common neighbours {2,3}; 3 is a landmark so
        # (0,1) not in Delta(X).  Hence (0,1,2) must NOT be guaranteed; but
        # crucially any triangle reported must still be sound.
        graph = complete_graph(4)
        simulator = self.run_with_landmarks(graph, {3}, threshold=10)
        for output in simulator.collect_outputs().values():
            for a, b, c in output:
                assert graph.has_edge(a, b) and graph.has_edge(a, c) and graph.has_edge(b, c)

    def test_triangles_with_all_edges_in_delta_are_listed(self):
        # Two disjoint triangles; making one vertex of the first triangle a
        # landmark leaves the second triangle entirely inside Delta(X), so it
        # must be listed (Proposition 4's completeness guarantee).
        graph = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        simulator = self.run_with_landmarks(graph, {0}, threshold=10)
        found = set()
        for output in simulator.collect_outputs().values():
            found |= output
        assert (3, 4, 5) in found

    def test_zero_threshold_withholds_everything_but_terminates(self):
        # With r = 0 no node can ever be r-good unless it has no active
        # neighbours with large S sets; the procedure must stop on its own
        # (no-progress detection) rather than loop forever.
        graph = complete_graph(6)
        simulator = CongestSimulator(graph, seed=0)
        for context in simulator.contexts:
            context.state["in_X"] = False
        stopped_early = run_axr(simulator, goodness_threshold=0.0)
        assert stopped_early is True

    def test_round_budget_enforced(self):
        graph = complete_graph(10)
        simulator = CongestSimulator(graph, seed=0, round_limit=1)
        for context in simulator.contexts:
            context.state["in_X"] = False
        from repro.errors import RoundLimitExceededError

        with pytest.raises(RoundLimitExceededError):
            run_axr(simulator, goodness_threshold=100.0)


class TestA3Algorithm:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            LightTrianglesLister(epsilon=-0.5)

    def test_parameters_recorded(self):
        result = LightTrianglesLister(epsilon=0.4).run(complete_graph(5), seed=1)
        assert result.parameters["epsilon"] == 0.4

    @pytest.mark.parametrize("seed", range(5))
    def test_soundness(self, seed):
        graph = gnp_random_graph(22, 0.4, seed=seed)
        result = LightTrianglesLister(epsilon=0.3).run(graph, seed=seed)
        result.check_soundness(graph)

    def test_triangle_free_graph(self):
        graph = triangle_free_bipartite(20, 0.5, seed=4)
        result = LightTrianglesLister(epsilon=0.3).run(graph, seed=4)
        assert not result.found_any()

    def test_light_triangles_found_with_good_rate(self):
        # On a sparse random graph with epsilon = 0.5 most triangles are
        # light; Proposition 3 promises each is listed with constant
        # probability, so across seeds the average per-triangle hit rate is
        # bounded away from zero.
        graph = gnp_random_graph(30, 0.25, seed=9)
        epsilon = 0.5
        light = light_triangles(graph, epsilon)
        assert light
        hits = 0
        trials = 10
        for seed in range(trials):
            found = LightTrianglesLister(epsilon=epsilon).run(graph, seed=seed).triangles_found()
            hits += sum(1 for t in light if t in found)
        assert hits / (trials * len(light)) >= 0.3

    def test_round_budget_respected_or_truncated(self):
        epsilon = 0.5
        for seed in range(3):
            graph = gnp_random_graph(30, 0.5, seed=seed)
            algorithm = LightTrianglesLister(epsilon=epsilon, budget_constant=8.0)
            result = algorithm.run(graph, seed=seed)
            budget = a3_round_budget(30, epsilon, 8.0)
            assert result.rounds <= budget or result.truncated

    def test_budget_can_be_disabled(self):
        graph = gnp_random_graph(20, 0.4, seed=1)
        algorithm = LightTrianglesLister(epsilon=0.5, enforce_budget=False)
        result = algorithm.run(graph, seed=1)
        result.check_soundness(graph)

    def test_explicit_overrides(self):
        graph = gnp_random_graph(20, 0.4, seed=2)
        algorithm = LightTrianglesLister(
            epsilon=0.5, landmark_probability=0.0, goodness_threshold=100.0
        )
        result = algorithm.run(graph, seed=2)
        # With no landmarks and a huge threshold this is the exhaustive case.
        assert result.triangles_found() == set(list_triangles(graph))

    def test_empty_graph(self):
        result = LightTrianglesLister(epsilon=0.5).run(Graph(4), seed=0)
        assert not result.found_any()

    def test_expected_rounds_helper(self):
        from repro.core.a3_light import expected_rounds

        value = expected_rounds(64, 0.5)
        assert value == pytest.approx(64**0.5 + 64**0.75 * 6)
        with pytest.raises(ValueError):
            expected_rounds(64, 1.5)
