"""Differential tests: batched phase kernels vs the reference closures.

The CONGEST accounting discipline must not drift when a protocol's message
production moves from per-node Python closures to whole-network array
programs over the typed columnar plane.  These tests pin all three kernels
together on every workload family — ``reference`` (per-node closures),
``pernode`` (columnar staging, per-node inbox views) and ``batched`` (the
direct-exchange path with fused whole-network receivers) — asserting
identical per-phase round counts, link-bit maxima, message counts and bit
totals, and identical per-node triangle output sets, for the same seed.
"""

import pytest

from repro.core import (
    DolevCliqueListing,
    HeavyHashingLister,
    HeavySamplingFinder,
    LightTrianglesLister,
    TriangleFinding,
    TriangleListing,
)
from repro.core.a3_light import run_axr
from repro.congest import CongestSimulator
from repro.graphs import (
    Graph,
    barabasi_albert_graph,
    complete_graph,
    gnp_random_graph,
    heavy_edge_gadget,
    lollipop_graph,
    planted_triangle_graph,
    random_regular_graph,
    triangle_free_bipartite,
    union_of_cliques,
)

#: Every workload family the generators produce, at differential-test size.
WORKLOADS = [
    pytest.param(lambda: gnp_random_graph(40, 0.4, seed=11), id="gnp-dense"),
    pytest.param(lambda: gnp_random_graph(48, 0.08, seed=12), id="gnp-sparse"),
    pytest.param(lambda: complete_graph(20), id="clique"),
    pytest.param(lambda: barabasi_albert_graph(48, 4, seed=13), id="barabasi-albert"),
    pytest.param(lambda: random_regular_graph(40, 4, seed=14), id="random-regular"),
    pytest.param(lambda: triangle_free_bipartite(36, seed=15), id="triangle-free"),
    pytest.param(lambda: planted_triangle_graph(40, 5, seed=16)[0], id="planted"),
    pytest.param(lambda: heavy_edge_gadget(36, 10)[0], id="heavy-gadget"),
    pytest.param(lambda: lollipop_graph(10, 12), id="lollipop"),
    pytest.param(lambda: union_of_cliques([8, 6, 5]), id="clique-union"),
    pytest.param(lambda: Graph(7, []), id="edgeless"),
]


def assert_identical_execution(
    make_algorithm, graph, seeds=(0, 3), kernels=("batched", "pernode")
):
    """Run every kernel and assert the executions are indistinguishable."""
    for seed in seeds:
        reference = make_algorithm("reference").run(graph, seed=seed)
        reference_phases = [
            (phase.name, phase.rounds, phase.max_link_bits, phase.bits, phase.messages)
            for phase in reference.metrics.phases
        ]
        for kernel in kernels:
            run = make_algorithm(kernel).run(graph, seed=seed)
            assert run.cost == reference.cost, kernel
            assert run.truncated == reference.truncated, kernel
            run_phases = [
                (
                    phase.name,
                    phase.rounds,
                    phase.max_link_bits,
                    phase.bits,
                    phase.messages,
                )
                for phase in run.metrics.phases
            ]
            assert run_phases == reference_phases, kernel
            assert run.output.union() == reference.output.union(), kernel
            for node in range(graph.num_nodes):
                assert run.output.node_output(node) == reference.output.node_output(
                    node
                ), kernel


@pytest.mark.parametrize("make_graph", WORKLOADS)
class TestKernelEquivalence:
    def test_a1_sampling(self, make_graph):
        assert_identical_execution(
            lambda kernel: HeavySamplingFinder(epsilon=0.3, kernel=kernel),
            make_graph(),
        )

    def test_a2_heavy_hashing(self, make_graph):
        assert_identical_execution(
            lambda kernel: HeavyHashingLister(epsilon=0.4, kernel=kernel),
            make_graph(),
        )

    def test_a3_light_listing(self, make_graph):
        assert_identical_execution(
            lambda kernel: LightTrianglesLister(epsilon=0.3, kernel=kernel),
            make_graph(),
        )

    def test_dolev_clique_baseline(self, make_graph):
        assert_identical_execution(
            lambda kernel: DolevCliqueListing(kernel=kernel), make_graph(), seeds=(0,)
        )

    def test_theorem2_listing(self, make_graph):
        assert_identical_execution(
            lambda kernel: TriangleListing(
                repetitions=2, epsilon=0.5, kernel=kernel
            ),
            make_graph(),
            seeds=(1,),
        )


class TestCompositionsAndEdgeCases:
    def test_theorem1_finding_identical(self):
        graph = gnp_random_graph(36, 0.3, seed=21)
        assert_identical_execution(
            lambda kernel: TriangleFinding(
                repetitions=2, epsilon=0.4, kernel=kernel
            ),
            graph,
            seeds=(2,),
        )

    def test_axr_explicit_landmarks_identical(self):
        # Drive A(X, r) directly with a fixed landmark set on both kernels.
        graph = gnp_random_graph(24, 0.35, seed=8)
        results = {}
        for kernel in ("reference", "batched"):
            simulator = CongestSimulator(graph, seed=5)
            for context in simulator.contexts:
                context.state["in_X"] = context.node_id in {0, 3, 7}
            stopped = run_axr(simulator, goodness_threshold=6.0, kernel=kernel)
            results[kernel] = (
                stopped,
                simulator.total_rounds,
                simulator.collect_outputs(),
            )
        assert results["batched"] == results["reference"]

    def test_axr_zero_threshold_stops_early_on_both_kernels(self):
        graph = complete_graph(6)
        for kernel in ("reference", "batched"):
            simulator = CongestSimulator(graph, seed=0)
            for context in simulator.contexts:
                context.state["in_X"] = False
            assert run_axr(simulator, goodness_threshold=0.0, kernel=kernel) is True

    def test_a3_budget_truncation_identical(self):
        # A tight budget truncates both kernels at the same point.
        graph = complete_graph(14)
        assert_identical_execution(
            lambda kernel: LightTrianglesLister(
                epsilon=0.0, budget_constant=0.05, kernel=kernel
            ),
            graph,
            seeds=(0, 1),
        )

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            HeavyHashingLister(epsilon=0.4, kernel="vectorised")
        with pytest.raises(ValueError):
            TriangleListing(kernel="fast")

    def test_axr_pernode_explicit_landmarks_identical(self):
        # Drive A(X, r) with a fixed landmark set on all three kernels.
        graph = gnp_random_graph(24, 0.35, seed=8)
        results = {}
        for kernel in ("reference", "pernode", "batched"):
            simulator = CongestSimulator(graph, seed=5)
            for context in simulator.contexts:
                context.state["in_X"] = context.node_id in {0, 3, 7}
            stopped = run_axr(simulator, goodness_threshold=6.0, kernel=kernel)
            results[kernel] = (
                stopped,
                simulator.total_rounds,
                simulator.collect_outputs(),
            )
        assert results["batched"] == results["reference"]
        assert results["pernode"] == results["reference"]

    def test_a3_sparse_fallback_matches_reference(self):
        # A workload sparse enough that the direct kernel takes the
        # sender-major (no dense matrices) step-4.1 path.
        graph = gnp_random_graph(120, 0.03, seed=9)
        assert_identical_execution(
            lambda kernel: LightTrianglesLister(epsilon=0.2, kernel=kernel),
            graph,
            seeds=(0,),
        )

    def test_a2_sparse_fallback_matches_reference(self):
        graph = gnp_random_graph(120, 0.03, seed=10)
        assert_identical_execution(
            lambda kernel: HeavyHashingLister(epsilon=0.2, kernel=kernel),
            graph,
            seeds=(0,),
        )
