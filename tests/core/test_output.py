"""Unit tests for output structures and result packaging."""

import pytest

from repro.congest import AlgorithmCost, ExecutionMetrics
from repro.core import AlgorithmResult, TriangleOutput
from repro.errors import VerificationError
from repro.graphs import Graph, complete_graph


def make_result(per_node, rounds=5):
    output = TriangleOutput(per_node={k: frozenset(v) for k, v in per_node.items()})
    return AlgorithmResult(
        algorithm="test",
        model="CONGEST",
        output=output,
        cost=AlgorithmCost(rounds=rounds, messages=0, bits=0, max_bits_received=0),
        metrics=ExecutionMetrics(),
    )


class TestTriangleOutput:
    def test_union(self):
        output = TriangleOutput({0: frozenset({(0, 1, 2)}), 1: frozenset({(0, 1, 2), (1, 2, 3)})})
        assert output.union() == {(0, 1, 2), (1, 2, 3)}

    def test_node_output_missing_node_is_empty(self):
        output = TriangleOutput({0: frozenset()})
        assert output.node_output(5) == frozenset()

    def test_total_reported_counts_duplicates(self):
        output = TriangleOutput({0: frozenset({(0, 1, 2)}), 1: frozenset({(0, 1, 2)})})
        assert output.total_reported() == 2

    def test_busiest_node(self):
        output = TriangleOutput(
            {0: frozenset({(0, 1, 2)}), 1: frozenset({(0, 1, 2), (1, 2, 3)}), 2: frozenset()}
        )
        assert output.busiest_node() == 1

    def test_busiest_node_tie_prefers_lowest_id(self):
        output = TriangleOutput({1: frozenset({(0, 1, 2)}), 0: frozenset({(1, 2, 3)})})
        assert output.busiest_node() == 0

    def test_busiest_node_none_when_empty(self):
        assert TriangleOutput({0: frozenset()}).busiest_node() is None

    def test_is_empty(self):
        assert TriangleOutput({0: frozenset()}).is_empty()
        assert not TriangleOutput({0: frozenset({(0, 1, 2)})}).is_empty()

    def test_merged_with(self):
        first = TriangleOutput({0: frozenset({(0, 1, 2)})})
        second = TriangleOutput({0: frozenset({(1, 2, 3)}), 1: frozenset({(0, 1, 2)})})
        merged = first.merged_with(second)
        assert merged.node_output(0) == {(0, 1, 2), (1, 2, 3)}
        assert merged.node_output(1) == {(0, 1, 2)}

    def test_from_simulator_outputs(self):
        output = TriangleOutput.from_simulator_outputs({0: [(0, 1, 2)], 1: []})
        assert output.node_output(0) == {(0, 1, 2)}


class TestAlgorithmResult:
    def test_found_any(self):
        assert make_result({0: {(0, 1, 2)}}).found_any()
        assert not make_result({0: set()}).found_any()

    def test_soundness_check_passes_on_real_triangles(self):
        result = make_result({0: {(0, 1, 2)}})
        result.check_soundness(complete_graph(3))

    def test_soundness_check_fails_on_fake_triangle(self):
        result = make_result({0: {(0, 1, 2)}})
        with pytest.raises(VerificationError):
            result.check_soundness(Graph(3, [(0, 1)]))

    def test_listing_recall(self):
        graph = complete_graph(4)  # 4 triangles
        result = make_result({0: {(0, 1, 2), (0, 1, 3)}})
        assert result.listing_recall(graph) == pytest.approx(0.5)

    def test_listing_recall_empty_graph(self):
        assert make_result({0: set()}).listing_recall(Graph(3)) == 1.0

    def test_missed_triangles(self):
        graph = complete_graph(4)
        result = make_result({0: {(0, 1, 2)}})
        assert result.missed_triangles(graph) == {(0, 1, 3), (0, 2, 3), (1, 2, 3)}

    def test_solves_finding_with_triangles(self):
        graph = complete_graph(3)
        assert make_result({0: {(0, 1, 2)}}).solves_finding(graph)
        assert not make_result({0: set()}).solves_finding(graph)

    def test_solves_finding_triangle_free(self):
        graph = Graph(3, [(0, 1)])
        assert make_result({0: set()}).solves_finding(graph)

    def test_solves_listing(self):
        graph = complete_graph(3)
        assert make_result({0: {(0, 1, 2)}}).solves_listing(graph)
        assert not make_result({0: set()}).solves_listing(graph)

    def test_rounds_property_and_summary(self):
        result = make_result({0: {(0, 1, 2)}}, rounds=9)
        assert result.rounds == 9
        assert "rounds=9" in result.summary()

    def test_summary_mentions_truncation(self):
        result = make_result({0: set()})
        result.truncated = True
        assert "truncated" in result.summary()


class TestOutputEquality:
    def test_structural_equality_across_representations(self):
        from repro.core import TriangleListing
        from repro.graphs import gnp_random_graph

        graph = gnp_random_graph(24, 0.4, seed=1)
        columnar = TriangleListing(repetitions=1, epsilon=0.5).run(graph, seed=3)
        materialised = TriangleListing(
            repetitions=1, epsilon=0.5, kernel="reference"
        ).run(graph, seed=3)
        assert columnar.output == materialised.output
        assert columnar.cost == materialised.cost

    def test_legacy_mapping_equality_semantics(self):
        assert TriangleOutput({0: frozenset({(0, 1, 2)})}) == TriangleOutput(
            {0: frozenset({(0, 1, 2)})}
        )
        assert TriangleOutput({0: frozenset({(0, 1, 2)})}) != TriangleOutput(
            {0: frozenset({(0, 1, 3)})}
        )
        # A node that reported nothing is still part of the tuple.
        assert TriangleOutput({0: frozenset()}) != TriangleOutput({})
        assert TriangleOutput({}) != "not-an-output"
