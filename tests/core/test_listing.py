"""Tests for the Theorem-2 triangle-listing algorithm."""

import pytest

from repro.core import TriangleListing, listing_epsilon_asymptotic, theorem2_round_bound
from repro.graphs import (
    Graph,
    complete_graph,
    gnp_random_graph,
    list_triangles,
    triangle_free_bipartite,
    union_of_cliques,
)


class TestListingCorrectness:
    @pytest.mark.parametrize("seed", range(3))
    def test_full_recall_on_random_graphs(self, seed):
        graph = gnp_random_graph(24, 0.4, seed=seed)
        result = TriangleListing().run(graph, seed=seed)
        result.check_soundness(graph)
        assert result.solves_listing(graph)

    def test_full_recall_with_asymptotic_epsilon(self):
        graph = gnp_random_graph(30, 0.4, seed=11)
        result = TriangleListing(epsilon=listing_epsilon_asymptotic()).run(graph, seed=11)
        assert result.listing_recall(graph) == 1.0

    def test_triangle_free_graph(self):
        graph = triangle_free_bipartite(22, 0.5, seed=2)
        result = TriangleListing(repetitions=1).run(graph, seed=2)
        assert not result.found_any()
        assert result.solves_listing(graph)

    def test_mixed_heavy_light_workload(self):
        graph = union_of_cliques([7, 4, 3, 3])
        result = TriangleListing().run(graph, seed=4)
        assert result.solves_listing(graph)

    def test_single_repetition_is_still_sound(self):
        graph = gnp_random_graph(26, 0.35, seed=6)
        result = TriangleListing(repetitions=1).run(graph, seed=6)
        result.check_soundness(graph)

    def test_empty_graph(self):
        result = TriangleListing(repetitions=1).run(Graph(4), seed=0)
        assert not result.found_any()

    def test_more_repetitions_never_lower_recall(self):
        graph = gnp_random_graph(26, 0.35, seed=8)
        few = TriangleListing(repetitions=1, epsilon=0.5).run(graph, seed=8)
        many = TriangleListing(repetitions=3, epsilon=0.5).run(graph, seed=8)
        assert many.listing_recall(graph) >= few.listing_recall(graph)


class TestListingParametersAndCost:
    def test_repetitions_default_is_logarithmic(self):
        graph = gnp_random_graph(32, 0.3, seed=1)
        params = TriangleListing().parameters_for(graph)
        assert params.repetitions == 5  # ceil(log2 32)

    def test_parameters_recorded(self):
        graph = complete_graph(6)
        result = TriangleListing(repetitions=1, epsilon=0.5).run(graph, seed=0)
        assert result.parameters["epsilon"] == 0.5
        assert result.parameters["repetitions"] == 1
        assert result.algorithm == "Theorem2-listing"

    def test_cost_grows_with_repetitions(self):
        graph = gnp_random_graph(22, 0.4, seed=3)
        one = TriangleListing(repetitions=1, epsilon=0.5).run(graph, seed=3)
        three = TriangleListing(repetitions=3, epsilon=0.5).run(graph, seed=3)
        assert three.rounds > one.rounds

    def test_metrics_include_both_components(self):
        graph = gnp_random_graph(22, 0.4, seed=3)
        result = TriangleListing(repetitions=1, epsilon=0.5).run(graph, seed=3)
        names = {report.name for report in result.metrics.phases}
        assert any(name.startswith("A2:") for name in names)
        assert any(name.startswith("A(X,r):") for name in names)

    def test_round_bound_reference_curve(self):
        assert theorem2_round_bound(16) == pytest.approx(8.0 * 4.0)
        assert theorem2_round_bound(1000) > theorem2_round_bound(100)

    def test_listing_dominates_finding_in_guarantee_strength(self):
        # Any run that solves listing also solves finding; verify on a
        # non-trivial instance.
        graph = gnp_random_graph(24, 0.4, seed=9)
        result = TriangleListing().run(graph, seed=9)
        assert result.solves_listing(graph)
        assert result.solves_finding(graph)


class TestConstructorValidation:
    """Bad public-API arguments fail at construction with ProtocolError."""

    def test_zero_or_negative_repetitions_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError, match="repetitions"):
            TriangleListing(repetitions=0)

    def test_out_of_range_epsilon_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError, match="epsilon"):
            TriangleListing(epsilon=2.0)

    def test_non_positive_constants_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError, match="repetition_constant"):
            TriangleListing(repetition_constant=0)
        with pytest.raises(ProtocolError, match="budget_constant"):
            TriangleListing(budget_constant=-1)

    def test_unknown_kernel_still_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            TriangleListing(kernel="turbo")

    def test_valid_arguments_accepted(self):
        TriangleListing(repetitions=1, epsilon=0.5)
        TriangleListing(repetition_constant=2.0, budget_constant=1.0)
