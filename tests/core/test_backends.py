"""Differential tests: the numpy and numba kernel backends.

The backend registry (:mod:`repro.congest.backends`) must be a pure
performance knob: switching ``backend="numpy"`` to ``backend="numba"``
(or shrinking ``chunk_bytes`` to force many tiny evaluation blocks) must
leave every ExperimentRecord byte-identical.  These tests pin that
contract over every workload family, and cover the graceful degradation
path — when numba is not importable, ``backend="numba"`` falls back to
the numpy kernels with a single RuntimeWarning per process.
"""

import json
import warnings

import numpy as np
import pytest

from repro.analysis.experiments import run_single
from repro.congest import backends
from repro.congest.backends import (
    DEFAULT_CHUNK_BYTES,
    active_backend,
    active_chunk_bytes,
    available_backends,
    chunk_rows,
    get_backend,
    numba_available,
    use_backend,
    validate_backend,
    validate_chunk_bytes,
)
from repro.core import (
    DolevCliqueListing,
    HeavyHashingLister,
    HeavySamplingFinder,
    LightTrianglesLister,
    TriangleFinding,
    TriangleListing,
)
from repro.errors import HashingError
from repro.graphs import (
    Graph,
    barabasi_albert_graph,
    complete_graph,
    gnp_random_graph,
    heavy_edge_gadget,
    lollipop_graph,
    planted_triangle_graph,
    random_regular_graph,
    triangle_free_bipartite,
    union_of_cliques,
)
from repro.hashing import KWiseIndependentFamily

#: Every workload family the generators produce, at differential-test size.
WORKLOADS = [
    pytest.param(lambda: gnp_random_graph(40, 0.4, seed=11), id="gnp-dense"),
    pytest.param(lambda: gnp_random_graph(48, 0.08, seed=12), id="gnp-sparse"),
    pytest.param(lambda: complete_graph(20), id="clique"),
    pytest.param(lambda: barabasi_albert_graph(48, 4, seed=13), id="barabasi-albert"),
    pytest.param(lambda: random_regular_graph(40, 4, seed=14), id="random-regular"),
    pytest.param(lambda: triangle_free_bipartite(36, seed=15), id="triangle-free"),
    pytest.param(lambda: planted_triangle_graph(40, 5, seed=16)[0], id="planted"),
    pytest.param(lambda: heavy_edge_gadget(36, 10)[0], id="heavy-gadget"),
    pytest.param(lambda: lollipop_graph(10, 12), id="lollipop"),
    pytest.param(lambda: union_of_cliques([8, 6, 5]), id="clique-union"),
    pytest.param(lambda: Graph(7, []), id="edgeless"),
]


def record_bytes(make_algorithm, graph, seed, **tuning):
    """Run once and serialize the full ExperimentRecord deterministically."""
    with warnings.catch_warnings():
        # The numba backend may legitimately fall back (one RuntimeWarning
        # per process); the differential contract is about the record bytes.
        warnings.simplefilter("ignore", RuntimeWarning)
        record = run_single(
            "backend-differential",
            make_algorithm(**tuning),
            graph,
            seed=seed,
        )
    return json.dumps(record.to_dict(), sort_keys=True).encode()


def assert_backend_identical(make_algorithm, graph, seeds=(0, 3)):
    """Byte-identical records across backends and chunk sizes."""
    for seed in seeds:
        baseline = record_bytes(make_algorithm, graph, seed, backend="numpy")
        assert (
            record_bytes(make_algorithm, graph, seed, backend="numba") == baseline
        )
        # A pathologically small budget forces many tiny evaluation blocks.
        assert (
            record_bytes(make_algorithm, graph, seed, backend="numpy", chunk_bytes=4096)
            == baseline
        )


@pytest.mark.parametrize("make_graph", WORKLOADS)
class TestBackendEquivalence:
    def test_a1_sampling(self, make_graph):
        assert_backend_identical(
            lambda **tuning: HeavySamplingFinder(epsilon=0.3, **tuning),
            make_graph(),
        )

    def test_a2_heavy_hashing(self, make_graph):
        assert_backend_identical(
            lambda **tuning: HeavyHashingLister(epsilon=0.4, **tuning),
            make_graph(),
        )

    def test_a3_light_listing(self, make_graph):
        assert_backend_identical(
            lambda **tuning: LightTrianglesLister(epsilon=0.3, **tuning),
            make_graph(),
        )

    def test_dolev_clique_baseline(self, make_graph):
        assert_backend_identical(
            lambda **tuning: DolevCliqueListing(**tuning), make_graph(), seeds=(0,)
        )

    def test_theorem2_listing(self, make_graph):
        assert_backend_identical(
            lambda **tuning: TriangleListing(repetitions=2, epsilon=0.5, **tuning),
            make_graph(),
            seeds=(1,),
        )


class TestCompositions:
    def test_theorem1_finding_identical(self):
        graph = gnp_random_graph(36, 0.3, seed=21)
        assert_backend_identical(
            lambda **tuning: TriangleFinding(repetitions=2, epsilon=0.4, **tuning),
            graph,
            seeds=(2,),
        )

    def test_sparse_fallback_paths_identical(self):
        # Sparse enough that CSR membership takes the sorted-merge path.
        graph = gnp_random_graph(120, 0.03, seed=9)
        assert_backend_identical(
            lambda **tuning: LightTrianglesLister(epsilon=0.2, **tuning),
            graph,
            seeds=(0,),
        )


class TestRegistry:
    def test_available_backends(self):
        names = available_backends()
        assert "numpy" in names
        assert ("numba" in names) == numba_available()

    def test_numpy_backend_is_default(self):
        assert active_backend().name == "numpy"
        assert active_chunk_bytes() == DEFAULT_CHUNK_BYTES

    def test_get_backend_numpy(self):
        assert get_backend("numpy").name == "numpy"

    def test_validate_backend(self):
        assert validate_backend("numpy") == "numpy"
        assert validate_backend("numba") == "numba"
        with pytest.raises(ValueError, match="backend"):
            validate_backend("cython")

    def test_validate_chunk_bytes(self):
        assert validate_chunk_bytes(None) is None
        assert validate_chunk_bytes(4096) == 4096
        for bad in (0, -1, 2.5, "big"):
            with pytest.raises(ValueError):
                validate_chunk_bytes(bad)

    def test_invalid_backend_rejected_by_algorithms(self):
        with pytest.raises(ValueError):
            HeavySamplingFinder(epsilon=0.3, backend="fortran")
        with pytest.raises(ValueError):
            TriangleListing(backend="fortran")
        with pytest.raises(ValueError):
            DolevCliqueListing(backend="fortran")
        with pytest.raises(ValueError):
            HeavyHashingLister(epsilon=0.4, chunk_bytes=0)

    def test_use_backend_restores_state(self):
        outer = active_backend()
        with use_backend("numpy", chunk_bytes=1 << 12):
            assert active_chunk_bytes() == 1 << 12
            assert chunk_rows(1 << 10) == 4
        assert active_backend() is outer
        assert active_chunk_bytes() == DEFAULT_CHUNK_BYTES

    def test_chunk_rows_minimum(self):
        with use_backend("numpy", chunk_bytes=16):
            assert chunk_rows(1 << 20) == 1
            assert chunk_rows(1 << 20, minimum=64) == 64


@pytest.mark.skipif(numba_available(), reason="numba importable: no fallback")
class TestMissingNumbaFallback:
    def test_single_warning_then_silence(self):
        previous = backends._numba_fallback_warned
        backends._numba_fallback_warned = False
        try:
            with pytest.warns(RuntimeWarning, match="falling back"):
                backend = get_backend("numba")
            assert backend.name == "numpy"
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert get_backend("numba").name == "numpy"
        finally:
            backends._numba_fallback_warned = previous

    def test_numba_not_available(self):
        assert not numba_available()


class TestKernelOps:
    """Unit-level pins of each backend op against naive evaluations."""

    def backend_pairs(self):
        names = ["numpy"]
        if numba_available():
            names.append("numba")
        return [get_backend(name) for name in names]

    def test_sorted_membership(self):
        rng = np.random.default_rng(0)
        keys = np.unique(rng.integers(0, 500, size=64))
        queries = rng.integers(-5, 510, size=256)
        expected = np.isin(queries, keys)
        for backend in self.backend_pairs():
            got = backend.sorted_membership(keys, queries)
            assert got.dtype == np.bool_
            np.testing.assert_array_equal(got, expected)

    def test_sorted_membership_empty(self):
        empty = np.empty(0, dtype=np.int64)
        for backend in self.backend_pairs():
            assert backend.sorted_membership(empty, np.array([3, 4])).sum() == 0
            assert backend.sorted_membership(np.array([1, 2]), empty).shape == (0,)

    def test_hash_zero_block_matches_scalar_functions(self):
        family = KWiseIndependentFamily(domain_size=97, range_size=9, independence=3)
        rng = np.random.default_rng(1)
        functions = [family.sample(rng) for _ in range(8)]
        rows = np.array([f.coefficients for f in functions], dtype=np.int64)
        points = np.arange(97, dtype=np.int64)
        expected = np.array(
            [[f(int(x)) == 0 for x in points] for f in functions], dtype=bool
        )
        for backend in self.backend_pairs():
            got = backend.hash_zero_block(
                rows, points, family.prime, family.range_size
            )
            np.testing.assert_array_equal(got, expected)

    def test_family_zero_block_dispatches(self):
        family = KWiseIndependentFamily(domain_size=50, range_size=5, independence=3)
        rng = np.random.default_rng(2)
        function = family.sample(rng)
        rows = np.array([function.coefficients], dtype=np.int64)
        points = np.arange(50, dtype=np.int64)
        expected = np.array([[function(int(x)) == 0 for x in points]])
        np.testing.assert_array_equal(family.zero_block(rows, points), expected)
        with pytest.raises(HashingError):
            family.zero_block(rows[:, :2], points)

    def test_landmark_incidence(self):
        graph = gnp_random_graph(30, 0.2, seed=5)
        csr = graph.csr()
        landmarks = np.array([2, 7, 19], dtype=np.int64)
        # Node-major orientation: incidence[v, j] == (v adjacent to X[j]).
        expected = np.zeros((30, 3), dtype=bool)
        for column, landmark in enumerate(landmarks):
            start, end = csr.indptr[landmark], csr.indptr[landmark + 1]
            expected[csr.indices[start:end], column] = True
        for backend in self.backend_pairs():
            got = backend.landmark_incidence(
                csr.indptr, csr.indices, landmarks, 30
            )
            np.testing.assert_array_equal(got, expected)

    def test_edge_support_chunk(self):
        graph = gnp_random_graph(24, 0.5, seed=6)
        csr = graph.csr()
        expected = csr.edge_support()
        packed = csr._packed_matrix()
        for backend in self.backend_pairs():
            got = backend.edge_support_chunk(packed, csr.edge_u, csr.edge_v)
            np.testing.assert_array_equal(got, expected)
