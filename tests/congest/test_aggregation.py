"""Unit tests for BFS-tree construction and convergecast aggregation."""

import pytest

from repro.congest import (
    CongestSimulator,
    broadcast_from_root,
    build_bfs_tree,
    convergecast_sum,
)
from repro.errors import SimulationError
from repro.graphs import Graph, complete_graph, cycle_graph, gnp_random_graph, lollipop_graph


def path_graph(length: int) -> Graph:
    return Graph(length, [(i, i + 1) for i in range(length - 1)])


class TestBfsTree:
    def test_tree_spans_connected_graph(self):
        graph = gnp_random_graph(20, 0.3, seed=3)
        from repro.graphs import is_connected

        if not is_connected(graph):
            pytest.skip("random instance not connected")
        simulator = CongestSimulator(graph, seed=0)
        tree = build_bfs_tree(simulator, root=0)
        assert len(tree) == graph.num_nodes
        assert tree[0] is None

    def test_parents_are_neighbors(self):
        graph = gnp_random_graph(15, 0.4, seed=4)
        simulator = CongestSimulator(graph, seed=0)
        tree = build_bfs_tree(simulator, root=0)
        for node, parent in tree.items():
            if parent is not None:
                assert graph.has_edge(node, parent)

    def test_depths_are_bfs_distances_on_path(self):
        simulator = CongestSimulator(path_graph(6), seed=0)
        build_bfs_tree(simulator, root=0)
        for context in simulator.contexts:
            assert context.state["bfs_depth"] == context.node_id

    def test_disconnected_component_not_reached(self):
        graph = Graph(6, [(0, 1), (1, 2), (3, 4)])
        simulator = CongestSimulator(graph, seed=0)
        tree = build_bfs_tree(simulator, root=0)
        assert set(tree) == {0, 1, 2}

    def test_rounds_proportional_to_depth(self):
        # A path of length L needs about 2L rounds (announce + ack per level),
        # far less than n^2; a complete graph needs O(1) levels.
        deep = CongestSimulator(path_graph(12), seed=0)
        build_bfs_tree(deep, root=0)
        shallow = CongestSimulator(complete_graph(12), seed=0)
        build_bfs_tree(shallow, root=0)
        assert shallow.total_rounds < deep.total_rounds

    def test_invalid_root(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        with pytest.raises(SimulationError):
            build_bfs_tree(simulator, root=9)

    def test_children_match_parents(self):
        graph = lollipop_graph(5, 4)
        simulator = CongestSimulator(graph, seed=0)
        tree = build_bfs_tree(simulator, root=0)
        for node, parent in tree.items():
            if parent is not None:
                assert node in simulator.context(parent).state["bfs_children"]


class TestConvergecast:
    def test_sum_of_ones_counts_nodes(self):
        graph = gnp_random_graph(18, 0.4, seed=5)
        from repro.graphs import is_connected

        if not is_connected(graph):
            pytest.skip("random instance not connected")
        simulator = CongestSimulator(graph, seed=0)
        build_bfs_tree(simulator, root=0)
        assert convergecast_sum(simulator, lambda ctx: 1, root=0) == graph.num_nodes

    def test_sum_of_identifiers(self):
        simulator = CongestSimulator(path_graph(7), seed=0)
        build_bfs_tree(simulator, root=0)
        assert convergecast_sum(simulator, lambda ctx: ctx.node_id, root=0) == sum(range(7))

    def test_sum_of_degrees_is_twice_edges(self):
        graph = complete_graph(9)
        simulator = CongestSimulator(graph, seed=0)
        build_bfs_tree(simulator, root=0)
        total = convergecast_sum(simulator, lambda ctx: ctx.degree, root=0)
        assert total == 2 * graph.num_edges

    def test_requires_tree(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        with pytest.raises(SimulationError):
            convergecast_sum(simulator, lambda ctx: 1)

    def test_single_node_network(self):
        simulator = CongestSimulator(Graph(1), seed=0)
        build_bfs_tree(simulator, root=0)
        assert convergecast_sum(simulator, lambda ctx: 5, root=0) == 5


class TestTreeBroadcast:
    def test_value_reaches_every_node(self):
        graph = lollipop_graph(4, 6)
        simulator = CongestSimulator(graph, seed=0)
        build_bfs_tree(simulator, root=0)
        broadcast_from_root(simulator, 42, root=0)
        for context in simulator.contexts:
            assert context.state.get("broadcast_value") == 42

    def test_requires_tree(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        with pytest.raises(SimulationError):
            broadcast_from_root(simulator, 1)
