"""Unit tests for the broadcast CONGEST simulator."""

import pytest

from repro.congest import BroadcastCongestSimulator, CongestSimulator, id_bits
from repro.errors import TopologyError
from repro.graphs import Graph, complete_graph, cycle_graph


def star_graph(leaves: int) -> Graph:
    return Graph(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


class TestBroadcastModel:
    def test_model_name(self):
        assert BroadcastCongestSimulator(cycle_graph(4)).model_name == "CONGEST broadcast"

    def test_broadcast_delivered_to_all_neighbors(self):
        simulator = BroadcastCongestSimulator(star_graph(4), seed=0)
        simulator.context(0).broadcast(("hello", 7))
        simulator.run_phase()
        for leaf in range(1, 5):
            assert simulator.context(leaf).received() == [(0, ("hello", 7))]

    def test_point_to_point_rejected(self):
        # Sending to only one of two neighbours is per-link addressing and
        # must be rejected by the broadcast model.
        simulator = BroadcastCongestSimulator(cycle_graph(4), seed=0)
        simulator.context(0).send(1, "x", bits=2)
        with pytest.raises(TopologyError):
            simulator.run_phase()

    def test_identical_messages_to_all_neighbors_allowed(self):
        # Explicitly enumerating every neighbour with the same payload is
        # equivalent to broadcast() and is accepted.
        simulator = BroadcastCongestSimulator(cycle_graph(4), seed=0)
        context = simulator.context(0)
        for neighbor in context.neighbors:
            context.send(neighbor, ("same", 1), bits=4)
        report = simulator.run_phase()
        assert report.messages == 2

    def test_empty_phase(self):
        simulator = BroadcastCongestSimulator(cycle_graph(4), seed=0)
        assert simulator.run_phase().rounds == 0


class TestBroadcastAccounting:
    def test_rounds_charged_per_node_not_per_link(self):
        # A node broadcasting k identifiers pays k rounds regardless of its
        # degree (the same message goes everywhere).
        simulator = BroadcastCongestSimulator(star_graph(6), seed=0)
        payload = tuple(range(5))
        simulator.context(0).broadcast(payload)
        report = simulator.run_phase()
        expected_bits = 5 * id_bits(7)
        assert report.rounds == simulator.bandwidth.rounds_for_bits(expected_bits, 7)

    def test_cost_matches_standard_congest_for_broadcast_protocols(self):
        # A pure-broadcast protocol costs the same in both models: the
        # standard model's per-link maximum equals the per-node total here.
        graph = complete_graph(5)
        broadcast_sim = BroadcastCongestSimulator(graph, seed=0)
        standard_sim = CongestSimulator(graph, seed=0)
        for simulator in (broadcast_sim, standard_sim):
            for context in simulator.contexts:
                context.broadcast(("bit", True), bits=3)
        assert broadcast_sim.run_phase().rounds == standard_sim.run_phase().rounds

    def test_metrics_account_received_bits(self):
        simulator = BroadcastCongestSimulator(star_graph(3), seed=0)
        simulator.context(1).broadcast(("x", 2), bits=6)
        simulator.run_phase()
        assert simulator.metrics.bits_received_per_node[0] == 6

    def test_round_limit_enforced(self):
        from repro.errors import RoundLimitExceededError

        simulator = BroadcastCongestSimulator(cycle_graph(4), seed=0, round_limit=1)
        simulator.context(0).broadcast(tuple(range(20)))
        with pytest.raises(RoundLimitExceededError):
            simulator.run_phase()


class TestBroadcastWithTypedChannels:
    def test_typed_broadcast_passes_discipline(self):
        import numpy as np

        from repro.congest.wire import A3_IN_X_SCHEMA

        simulator = BroadcastCongestSimulator(complete_graph(4), seed=0)
        csr = simulator.graph.csr()
        degrees = np.diff(csr.indptr)
        src = np.repeat(np.arange(4, dtype=np.int64), degrees)
        simulator.stage_columns(
            A3_IN_X_SCHEMA, src, csr.indices, {"flag": (src % 2).astype(np.int64)}
        )
        report = simulator.run_phase("typed-broadcast")
        assert report.rounds == 1
        assert report.messages == 12
        assert simulator.context(0).received_columns(A3_IN_X_SCHEMA).count == 3

    def test_typed_per_link_send_rejected(self):
        import numpy as np

        from repro.congest.wire import A3_IN_X_SCHEMA

        simulator = BroadcastCongestSimulator(complete_graph(4), seed=0)
        simulator.context(0).send_columns(
            A3_IN_X_SCHEMA,
            np.array([1], dtype=np.int64),
            {"flag": np.array([1], dtype=np.int64)},
        )
        with pytest.raises(TopologyError):
            simulator.run_phase()
