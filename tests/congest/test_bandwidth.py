"""Unit tests for the bandwidth policy."""

import pytest

from repro.congest import DEFAULT_BANDWIDTH, BandwidthPolicy
from repro.errors import SimulationError


class TestBitsPerRound:
    def test_default_policy_is_log_n(self):
        policy = BandwidthPolicy(minimum_bits=1)
        assert policy.bits_per_round(1024) == 10
        assert policy.bits_per_round(1000) == 10  # ceil(log2 1000)

    def test_minimum_bits_floor(self):
        policy = BandwidthPolicy(minimum_bits=8)
        assert policy.bits_per_round(4) == 8

    def test_log_factor_scales(self):
        base = BandwidthPolicy(log_factor=1.0, minimum_bits=1)
        doubled = BandwidthPolicy(log_factor=2.0, minimum_bits=1)
        assert doubled.bits_per_round(1024) == 2 * base.bits_per_round(1024)

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            BandwidthPolicy(log_factor=0.0)
        with pytest.raises(SimulationError):
            BandwidthPolicy(minimum_bits=0)

    def test_invalid_network_size(self):
        with pytest.raises(SimulationError):
            DEFAULT_BANDWIDTH.bits_per_round(0)


class TestRoundsForBits:
    def test_zero_bits_zero_rounds(self):
        assert DEFAULT_BANDWIDTH.rounds_for_bits(0, 100) == 0

    def test_exact_multiple(self):
        policy = BandwidthPolicy(minimum_bits=1)
        per_round = policy.bits_per_round(256)
        assert policy.rounds_for_bits(3 * per_round, 256) == 3

    def test_ceiling_behaviour(self):
        policy = BandwidthPolicy(minimum_bits=1)
        per_round = policy.bits_per_round(256)
        assert policy.rounds_for_bits(per_round + 1, 256) == 2

    def test_single_bit_costs_one_round(self):
        assert DEFAULT_BANDWIDTH.rounds_for_bits(1, 50) == 1

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            DEFAULT_BANDWIDTH.rounds_for_bits(-1, 10)

    def test_one_node_id_fits_in_one_round(self):
        # The defining property of the CONGEST model: a constant number of
        # identifiers per round, in particular one.
        from repro.congest import id_bits

        for n in (2, 10, 100, 1000, 10_000):
            assert DEFAULT_BANDWIDTH.rounds_for_bits(id_bits(n), n) == 1
