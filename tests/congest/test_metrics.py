"""Unit tests for execution metrics."""

from repro.congest import AlgorithmCost, ExecutionMetrics, PhaseReport


class TestExecutionMetrics:
    def test_record_phase_accumulates(self):
        metrics = ExecutionMetrics()
        metrics.record_phase(PhaseReport("a", rounds=3, messages=10, bits=70, max_link_bits=21))
        metrics.record_phase(PhaseReport("b", rounds=2, messages=5, bits=35, max_link_bits=14))
        assert metrics.total_rounds == 5
        assert metrics.total_messages == 15
        assert metrics.total_bits == 105
        assert len(metrics.phases) == 2

    def test_rounds_by_phase_name_groups(self):
        metrics = ExecutionMetrics()
        metrics.record_phase(PhaseReport("loop", 2, 0, 0, 0))
        metrics.record_phase(PhaseReport("loop", 3, 0, 0, 0))
        metrics.record_phase(PhaseReport("setup", 1, 0, 0, 0))
        assert metrics.rounds_by_phase_name() == {"loop": 5, "setup": 1}

    def test_record_delivery_and_max_bits(self):
        metrics = ExecutionMetrics()
        metrics.record_delivery(0, 10)
        metrics.record_delivery(1, 25)
        metrics.record_delivery(0, 5)
        assert metrics.bits_received_per_node == {0: 15, 1: 25}
        assert metrics.max_bits_received() == 25
        assert metrics.messages_received_per_node[0] == 2

    def test_max_bits_received_empty(self):
        assert ExecutionMetrics().max_bits_received() == 0

    def test_merge(self):
        first = ExecutionMetrics()
        first.record_phase(PhaseReport("a", 4, 2, 20, 10))
        first.record_delivery(3, 20)
        second = ExecutionMetrics()
        second.record_phase(PhaseReport("b", 6, 1, 10, 10))
        second.record_delivery(3, 10)
        second.record_delivery(4, 5)
        first.merge(second)
        assert first.total_rounds == 10
        assert first.bits_received_per_node == {3: 30, 4: 5}

    def test_summary_mentions_totals(self):
        metrics = ExecutionMetrics()
        metrics.record_phase(PhaseReport("setup", 2, 1, 8, 8))
        summary = metrics.summary()
        assert "total rounds:   2" in summary
        assert "setup" in summary


class TestAlgorithmCost:
    def test_from_metrics(self):
        metrics = ExecutionMetrics()
        metrics.record_phase(PhaseReport("x", 7, 3, 42, 14))
        metrics.record_delivery(0, 42)
        cost = AlgorithmCost.from_metrics(metrics)
        assert cost.rounds == 7
        assert cost.messages == 3
        assert cost.bits == 42
        assert cost.max_bits_received == 42

    def test_str(self):
        cost = AlgorithmCost(rounds=1, messages=2, bits=3, max_bits_received=4)
        assert "rounds=1" in str(cost)


class TestPhaseReport:
    def test_str(self):
        report = PhaseReport("phase-x", 2, 3, 4, 5)
        text = str(report)
        assert "phase-x" in text and "rounds=2" in text
