"""Unit tests for the Lenzen routing primitive."""

import pytest

from repro.congest import CliqueSimulator, CongestSimulator, LenzenRouter, RoutingRequest
from repro.errors import SimulationError, TopologyError
from repro.graphs import Graph, complete_graph


def make_clique(num_nodes: int) -> CliqueSimulator:
    return CliqueSimulator(Graph(num_nodes), seed=0)


class TestRouterConstruction:
    def test_requires_clique_simulator(self):
        with pytest.raises(SimulationError):
            LenzenRouter(CongestSimulator(complete_graph(4)))

    def test_invalid_constant(self):
        with pytest.raises(SimulationError):
            LenzenRouter(make_clique(4), constant_rounds=0)


class TestRouting:
    def test_empty_instance_costs_nothing(self):
        simulator = make_clique(5)
        report = LenzenRouter(simulator).route([])
        assert report.rounds == 0
        assert simulator.total_rounds == 0

    def test_single_message_delivered(self):
        simulator = make_clique(5)
        router = LenzenRouter(simulator)
        router.route([RoutingRequest(0, 3, ("data", 7), bits=8)])
        assert simulator.context(3).received() == [(0, ("data", 7))]

    def test_balanced_instance_costs_constant_rounds(self):
        # Every node sends one message to its successor: loads are 1 << n,
        # so the cost is exactly the constant.
        simulator = make_clique(10)
        router = LenzenRouter(simulator, constant_rounds=2)
        requests = [
            RoutingRequest(i, (i + 1) % 10, ("x", i), bits=8) for i in range(10)
        ]
        report = router.route(requests)
        assert report.rounds == 2

    def test_overloaded_receiver_charges_batches(self):
        # One node receives 3n messages -> ceil(3n/n) = 3 batches.
        num_nodes = 8
        simulator = make_clique(num_nodes)
        router = LenzenRouter(simulator, constant_rounds=1)
        requests = []
        for repeat in range(3 * num_nodes):
            source = 1 + (repeat % (num_nodes - 1))
            requests.append(RoutingRequest(source, 0, ("x", repeat), bits=1))
        report = router.route(requests)
        assert report.rounds == 3
        assert len(simulator.context(0).received()) == 3 * num_nodes

    def test_self_routing_rejected(self):
        router = LenzenRouter(make_clique(4))
        with pytest.raises(TopologyError):
            router.route([RoutingRequest(1, 1, "x", bits=1)])

    def test_out_of_range_nodes_rejected(self):
        router = LenzenRouter(make_clique(4))
        with pytest.raises(TopologyError):
            router.route([RoutingRequest(0, 9, "x", bits=1)])

    def test_metrics_recorded_on_simulator(self):
        simulator = make_clique(6)
        router = LenzenRouter(simulator)
        router.route([RoutingRequest(0, 1, "x", bits=16)])
        assert simulator.metrics.total_messages == 1
        assert simulator.metrics.bits_received_per_node[1] == 16
        assert simulator.total_rounds >= 1

    def test_large_messages_count_as_multiple_units(self):
        # A message needing several bandwidth chunks occupies several units
        # of its endpoints' load.
        num_nodes = 4
        simulator = make_clique(num_nodes)
        per_round = simulator.bandwidth.bits_per_round(num_nodes)
        router = LenzenRouter(simulator, constant_rounds=1)
        report = router.route(
            [RoutingRequest(0, 1, "big", bits=per_round * 2 * num_nodes)]
        )
        assert report.rounds == 2
