"""Unit tests for the strict round-by-round engine, including cross-validation
against the phase-based simulator."""

import pytest

from repro.congest import (
    BandwidthPolicy,
    CongestSimulator,
    RoundEngine,
    id_bits,
)
from repro.errors import (
    BandwidthExceededError,
    ProtocolError,
    SimulationError,
    TopologyError,
)
from repro.graphs import Graph, cycle_graph, complete_graph


class TestStrictEngineBasics:
    def test_empty_network_rejected(self):
        with pytest.raises(SimulationError):
            RoundEngine(Graph(0))

    def test_program_with_no_communication_costs_zero_rounds(self):
        engine = RoundEngine(cycle_graph(4), seed=0)

        def silent(ctx):
            ctx.state["done"] = True
            return
            yield  # pragma: no cover

        assert engine.run(silent) == 0

    def test_single_round_exchange(self):
        engine = RoundEngine(cycle_graph(4), seed=0)
        seen = {}

        def ping_right(ctx):
            right = (ctx.node_id + 1) % ctx.num_nodes
            if right in ctx.neighbors:
                ctx.send(right, ctx.node_id)
            yield
            seen[ctx.node_id] = ctx.received()

        rounds = engine.run(ping_right)
        assert rounds == 1
        assert seen[1] == [(0, 0)]

    def test_oversized_message_rejected(self):
        engine = RoundEngine(cycle_graph(4), seed=0)

        def too_big(ctx):
            ctx.send(next(iter(ctx.neighbors)), "huge", bits=10_000)
            yield

        with pytest.raises(BandwidthExceededError):
            engine.run(too_big)

    def test_double_send_same_link_rejected(self):
        engine = RoundEngine(cycle_graph(4), seed=0)

        def chatty(ctx):
            neighbor = next(iter(ctx.neighbors))
            ctx.send(neighbor, 1)
            ctx.send(neighbor, 2)
            yield

        with pytest.raises(ProtocolError):
            engine.run(chatty)

    def test_send_to_non_neighbor_rejected(self):
        engine = RoundEngine(cycle_graph(5), seed=0)

        def wrong(ctx):
            if ctx.node_id == 0:
                ctx.send(2, 1)
            yield

        with pytest.raises(TopologyError):
            engine.run(wrong)

    def test_non_terminating_program_hits_safety_limit(self):
        engine = RoundEngine(cycle_graph(3), seed=0, max_rounds=10)

        def forever(ctx):
            while True:
                yield

        with pytest.raises(SimulationError):
            engine.run(forever)

    def test_metrics_track_messages(self):
        engine = RoundEngine(cycle_graph(4), seed=0)

        def one_ping(ctx):
            if ctx.node_id == 0:
                ctx.send(1, 9)
            yield

        engine.run(one_ping)
        assert engine.metrics.total_messages == 1
        assert engine.metrics.bits_received_per_node[1] == id_bits(4)


class TestMultiRoundPrograms:
    def test_flood_takes_diameter_rounds(self):
        # Token starts at node 0 of a path and is forwarded right one hop per
        # round: reaching the end of a k-edge path takes k rounds.
        path = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        engine = RoundEngine(path, seed=0)

        def forward_token(ctx):
            if ctx.node_id == 0:
                ctx.send(1, ("token", True), bits=2)
                return
            while True:
                yield
                got_token = any(
                    payload[0] == "token" for _, payload in ctx.received()
                )
                if got_token:
                    if ctx.node_id < ctx.num_nodes - 1:
                        ctx.send(ctx.node_id + 1, ("token", True), bits=2)
                    return

        rounds = engine.run(forward_token)
        assert rounds == 4


class TestCrossValidationAgainstPhaseSimulator:
    """A phase-synchronous protocol must cost the same rounds on both engines."""

    def test_neighborhood_exchange_costs_match(self):
        graph = complete_graph(6)
        policy = BandwidthPolicy(minimum_bits=1)

        # Strict engine: every node sends its neighbour list, one identifier
        # per round per link.
        engine = RoundEngine(graph, bandwidth=policy, seed=0)

        def exchange(ctx):
            queues = {nbr: list(sorted(ctx.neighbors)) for nbr in ctx.neighbors}
            while any(queues.values()):
                for nbr, queue in queues.items():
                    if queue:
                        ctx.send(nbr, queue.pop(0))
                yield

        strict_rounds = engine.run(exchange)

        # Phase simulator: the same data enqueued in one phase.
        simulator = CongestSimulator(graph, bandwidth=policy, seed=0)

        def enqueue(ctx):
            neighbors = sorted(ctx.neighbors)
            bits = len(neighbors) * id_bits(ctx.num_nodes)
            ctx.broadcast(("N", tuple(neighbors)), bits=bits)

        simulator.for_each_node(enqueue)
        phase_rounds = simulator.run_phase().rounds

        assert strict_rounds == phase_rounds

    def test_single_message_costs_match(self):
        graph = cycle_graph(9)
        policy = BandwidthPolicy(minimum_bits=1)

        engine = RoundEngine(graph, bandwidth=policy, seed=0)

        def send_once(ctx):
            if ctx.node_id == 0:
                ctx.send(1, 5)
            yield

        strict_rounds = engine.run(send_once)

        simulator = CongestSimulator(graph, bandwidth=policy, seed=0)
        simulator.context(0).send(1, 5)
        assert strict_rounds == simulator.run_phase().rounds == 1
