"""Unit tests for on-wire bit-size accounting."""

import pytest

from repro.congest import default_bit_size, edge_bits, id_bits, integer_bits, triangle_bits
from repro.errors import SimulationError
from repro.hashing import KWiseIndependentFamily


class TestIdBits:
    def test_powers_of_two(self):
        assert id_bits(2) == 1
        assert id_bits(4) == 2
        assert id_bits(1024) == 10

    def test_non_powers(self):
        assert id_bits(3) == 2
        assert id_bits(100) == 7

    def test_single_node_network(self):
        assert id_bits(1) == 1

    def test_invalid(self):
        with pytest.raises(SimulationError):
            id_bits(0)

    def test_edge_and_triangle_bits(self):
        assert edge_bits(100) == 2 * id_bits(100)
        assert triangle_bits(100) == 3 * id_bits(100)


class TestIntegerBits:
    def test_small_values(self):
        assert integer_bits(0) == 1
        assert integer_bits(1) == 1
        assert integer_bits(2) == 2
        assert integer_bits(255) == 8

    def test_negative_values_cost_sign_bit(self):
        assert integer_bits(-3) == integer_bits(3) + 1


class TestDefaultBitSize:
    def test_none_is_one_bit(self):
        assert default_bit_size(None, 100) == 1

    def test_bool_is_one_bit(self):
        assert default_bit_size(True, 100) == 1
        assert default_bit_size(False, 100) == 1

    def test_int_is_node_id(self):
        assert default_bit_size(42, 100) == id_bits(100)

    def test_tuple_sums_elements(self):
        assert default_bit_size((1, 2), 100) == 2 * id_bits(100)
        assert default_bit_size((1, 2, 3), 100) == 3 * id_bits(100)

    def test_string_tags_cost_eight_bits_per_character(self):
        assert default_bit_size("S", 100) == 8
        assert default_bit_size("", 100) == 1

    def test_tagged_tuple(self):
        assert default_bit_size(("S", 5), 100) == 8 + id_bits(100)

    def test_list_and_set(self):
        assert default_bit_size([1, 2, 3], 64) == 3 * id_bits(64)
        assert default_bit_size({1, 2}, 64) == 2 * id_bits(64)

    def test_hash_function_uses_encoded_bits(self):
        family = KWiseIndependentFamily(domain_size=64, range_size=4)
        function = family.sample()
        assert default_bit_size(function, 64) == function.encoded_bits()

    def test_unsupported_type_raises(self):
        with pytest.raises(SimulationError):
            default_bit_size(object(), 10)
