"""Unit tests for on-wire bit-size accounting and the typed wire schemas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import (
    WIRE_SCHEMAS,
    EdgeListSchema,
    FlagSchema,
    HashDescriptorSchema,
    IdListSchema,
    RoutedEdgeSchema,
    default_bit_size,
    edge_bits,
    id_bits,
    integer_bits,
    register_schema,
    schema_for,
    triangle_bits,
)
from repro.congest.wire import (
    A1_SAMPLE_SCHEMA,
    A2_EDGE_SCHEMA,
    A3_IN_U_SCHEMA,
    A3_IN_X_SCHEMA,
    A3_NX_SCHEMA,
    A3_S_SCHEMA,
    A3_V_SCHEMA,
)
from repro.errors import SimulationError
from repro.hashing import KWiseIndependentFamily


class TestIdBits:
    def test_powers_of_two(self):
        assert id_bits(2) == 1
        assert id_bits(4) == 2
        assert id_bits(1024) == 10

    def test_non_powers(self):
        assert id_bits(3) == 2
        assert id_bits(100) == 7

    def test_single_node_network(self):
        assert id_bits(1) == 1

    def test_invalid(self):
        with pytest.raises(SimulationError):
            id_bits(0)

    def test_edge_and_triangle_bits(self):
        assert edge_bits(100) == 2 * id_bits(100)
        assert triangle_bits(100) == 3 * id_bits(100)


class TestIntegerBits:
    def test_small_values(self):
        assert integer_bits(0) == 1
        assert integer_bits(1) == 1
        assert integer_bits(2) == 2
        assert integer_bits(255) == 8

    def test_negative_values_cost_sign_bit(self):
        assert integer_bits(-3) == integer_bits(3) + 1


class TestDefaultBitSize:
    def test_none_is_one_bit(self):
        assert default_bit_size(None, 100) == 1

    def test_bool_is_one_bit(self):
        assert default_bit_size(True, 100) == 1
        assert default_bit_size(False, 100) == 1

    def test_int_is_node_id(self):
        assert default_bit_size(42, 100) == id_bits(100)

    def test_tuple_sums_elements(self):
        assert default_bit_size((1, 2), 100) == 2 * id_bits(100)
        assert default_bit_size((1, 2, 3), 100) == 3 * id_bits(100)

    def test_string_tags_cost_eight_bits_per_character(self):
        assert default_bit_size("S", 100) == 8
        assert default_bit_size("", 100) == 1

    def test_tagged_tuple(self):
        assert default_bit_size(("S", 5), 100) == 8 + id_bits(100)

    def test_list_and_set(self):
        assert default_bit_size([1, 2, 3], 64) == 3 * id_bits(64)
        assert default_bit_size({1, 2}, 64) == 2 * id_bits(64)

    def test_hash_function_uses_encoded_bits(self):
        family = KWiseIndependentFamily(domain_size=64, range_size=4)
        function = family.sample()
        assert default_bit_size(function, 64) == function.encoded_bits()

    def test_unsupported_type_raises(self):
        with pytest.raises(SimulationError):
            default_bit_size(object(), 10)

    def test_empty_containers_are_floored_at_one_bit(self):
        # Regression: a zero-bit message would be free on the wire.  Like
        # ``None``, an empty container still occupies a message slot.
        assert default_bit_size((), 100) == 1
        assert default_bit_size([], 100) == 1
        assert default_bit_size(set(), 100) == 1
        assert default_bit_size(frozenset(), 100) == 1

    def test_tagged_empty_container_still_counts_the_tag(self):
        assert default_bit_size(("S", ()), 100) == 8 + 1


class TestSchemaRegistry:
    def test_known_kinds_resolve(self):
        for kind, schema in WIRE_SCHEMAS.items():
            assert schema_for(kind) is schema

    def test_unknown_kind_raises(self):
        with pytest.raises(SimulationError):
            schema_for("no-such-kind")

    def test_reregistering_same_object_is_idempotent(self):
        assert register_schema(A2_EDGE_SCHEMA) is A2_EDGE_SCHEMA

    def test_conflicting_registration_rejected(self):
        with pytest.raises(SimulationError):
            register_schema(IdListSchema("a2-edges", "other"))

    def test_protocol_schemas_registered(self):
        for schema in (
            A1_SAMPLE_SCHEMA,
            A2_EDGE_SCHEMA,
            A3_NX_SCHEMA,
            A3_S_SCHEMA,
            A3_V_SCHEMA,
            A3_IN_X_SCHEMA,
            A3_IN_U_SCHEMA,
        ):
            assert WIRE_SCHEMAS[schema.kind] is schema


#: One id-list schema stands in for all four (they differ only in tag).
_NUM_NODES = st.integers(min_value=2, max_value=2000)


class TestSchemaRoundTrips:
    """Property tests: encode → columns → decode identity, and singleton
    batch sizes consistent with the scalar ``default_bit_size`` story."""

    @settings(deadline=None, max_examples=60)
    @given(
        num_nodes=_NUM_NODES,
        members=st.lists(st.integers(min_value=0, max_value=1999), max_size=30),
    )
    def test_id_list_round_trip(self, num_nodes, members):
        payload = ("S", tuple(members))
        columns = A3_S_SCHEMA.encode(payload)
        assert set(columns) == {"member"}
        assert A3_S_SCHEMA.decode(columns) == payload
        size = int(A3_S_SCHEMA.bit_size([len(members)], num_nodes)[0])
        # The members are node identifiers, so the columnar accounting must
        # agree with the scalar default on the data content.
        assert size == default_bit_size(tuple(members), num_nodes)

    @settings(deadline=None, max_examples=60)
    @given(
        num_nodes=_NUM_NODES,
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=999),
                st.integers(min_value=1000, max_value=1999),
            ),
            max_size=20,
        ),
    )
    def test_edge_list_round_trip(self, num_nodes, pairs):
        payload = ("edges", tuple(pairs))
        columns = A2_EDGE_SCHEMA.encode(payload)
        assert set(columns) == {"u", "v"}
        assert A2_EDGE_SCHEMA.decode(columns) == payload
        size = int(A2_EDGE_SCHEMA.bit_size([len(pairs)], num_nodes)[0])
        assert size == default_bit_size(tuple(pairs), num_nodes)

    @settings(deadline=None, max_examples=60)
    @given(num_nodes=_NUM_NODES, flag=st.booleans())
    def test_flag_round_trip(self, num_nodes, flag):
        payload = ("in_X", flag)
        columns = A3_IN_X_SCHEMA.encode(payload)
        assert A3_IN_X_SCHEMA.decode(columns) == payload
        assert int(A3_IN_X_SCHEMA.bit_size([1], num_nodes)[0]) == default_bit_size(
            flag, num_nodes
        )

    @settings(deadline=None, max_examples=40)
    @given(
        num_nodes=st.integers(min_value=2, max_value=500),
        independence=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_hash_descriptor_round_trip(self, num_nodes, independence, seed):
        family = KWiseIndependentFamily(
            domain_size=num_nodes, range_size=4, independence=independence
        )
        function = family.sample(np.random.default_rng(seed))
        payload = ("hash", function.encode())
        schema = HashDescriptorSchema(family.independence, family.prime)
        columns = schema.encode(payload)
        assert schema.decode(columns) == payload
        # The columnar size of one descriptor is exactly the encoded size
        # the scalar path charges for the hash-function object.
        assert int(schema.bit_size([family.independence], num_nodes)[0]) == (
            default_bit_size(function, num_nodes)
        )
        assert int(
            schema.bit_size([family.independence], num_nodes)[0]
        ) == family.description_bits()

    @settings(deadline=None, max_examples=60)
    @given(
        num_nodes=_NUM_NODES,
        u=st.integers(min_value=0, max_value=999),
        v=st.integers(min_value=1000, max_value=1999),
        triple_index=st.integers(min_value=0, max_value=3),
    )
    def test_routed_edge_round_trip(self, num_nodes, u, v, triple_index):
        triples = [(0, 0, 0), (0, 0, 1), (0, 1, 1), (1, 1, 1)]
        schema = RoutedEdgeSchema(triples)
        payload = ("edge", (u, v), triples[triple_index])
        columns = schema.encode(payload)
        assert schema.decode(columns) == payload
        assert int(schema.bit_size([1], num_nodes)[0]) == default_bit_size(
            (u, v), num_nodes
        )

    @settings(deadline=None, max_examples=30)
    @given(
        num_nodes=_NUM_NODES,
        lengths=st.lists(
            st.integers(min_value=0, max_value=50), min_size=1, max_size=30
        ),
    )
    def test_vectorized_sizes_match_scalar_sizes(self, num_nodes, lengths):
        # A whole batch sized in one call equals per-message scalar sizing.
        batch = A3_NX_SCHEMA.bit_size(lengths, num_nodes)
        assert batch.dtype == np.int64
        for index, length in enumerate(lengths):
            expected = max(1, length * id_bits(num_nodes))
            assert int(batch[index]) == expected

    def test_encode_rejects_wrong_tag(self):
        with pytest.raises(SimulationError):
            A3_S_SCHEMA.encode(("V", (1, 2)))
        with pytest.raises(SimulationError):
            A2_EDGE_SCHEMA.encode(("S", ()))
