"""Tests for the direct-exchange execution path.

The direct path must (a) charge byte-identical CONGEST costs to the inbox
path, (b) hand kernels the same destination-grouped data the per-node views
would have carried, and (c) never materialise per-node delivery objects —
the last point enforced with the runtime's allocation hook.
"""

import numpy as np
import pytest

from repro.congest import (
    CongestSimulator,
    DeliveredChannel,
    group_channel,
    set_allocation_hook,
)
from repro.congest.runtime import build_typed_channel
from repro.congest.wire import A3_S_SCHEMA, A3_V_SCHEMA
from repro.core import TriangleListing
from repro.errors import RoundLimitExceededError
from repro.graphs import Graph, complete_graph, gnp_random_graph


def stage_demo_traffic(simulator):
    """Queue a small ragged typed batch from two senders to two receivers."""
    simulator.context(1).send_columns(
        A3_S_SCHEMA,
        np.array([0, 2], dtype=np.int64),
        {"member": np.array([5, 4, 3], dtype=np.int64)},
        lengths=np.array([2, 1], dtype=np.int64),
    )
    simulator.context(2).send_columns(
        A3_S_SCHEMA,
        np.array([0], dtype=np.int64),
        {"member": np.array([1, 2, 3], dtype=np.int64)},
        lengths=np.array([3], dtype=np.int64),
    )


class TestExchangePhase:
    def test_accounting_identical_to_run_phase(self):
        graph = complete_graph(6)
        inbox_sim = CongestSimulator(graph, seed=0)
        direct_sim = CongestSimulator(graph, seed=0)
        stage_demo_traffic(inbox_sim)
        stage_demo_traffic(direct_sim)
        inbox_report = inbox_sim.run_phase("phase")
        delivered = direct_sim.exchange_phase("phase")
        direct_report = delivered.report
        assert (
            inbox_report.rounds,
            inbox_report.messages,
            inbox_report.bits,
            inbox_report.max_link_bits,
        ) == (
            direct_report.rounds,
            direct_report.messages,
            direct_report.bits,
            direct_report.max_link_bits,
        )
        assert (
            inbox_sim.metrics.bits_received_per_node
            == direct_sim.metrics.bits_received_per_node
        )
        assert (
            inbox_sim.metrics.messages_received_per_node
            == direct_sim.metrics.messages_received_per_node
        )

    def test_grouped_channel_matches_inbox_views(self):
        graph = complete_graph(6)
        inbox_sim = CongestSimulator(graph, seed=0)
        direct_sim = CongestSimulator(graph, seed=0)
        stage_demo_traffic(inbox_sim)
        stage_demo_traffic(direct_sim)
        inbox_sim.run_phase("phase")
        channel = direct_sim.exchange_phase("phase").channel(A3_S_SCHEMA)
        assert channel.receivers.tolist() == [0, 2]
        for which, receiver in enumerate(channel.receivers.tolist()):
            view = inbox_sim.context(receiver).received_columns(A3_S_SCHEMA)
            start = int(channel.message_bounds[which])
            end = int(channel.message_bounds[which + 1])
            assert channel.src[start:end].tolist() == view.senders.tolist()
            element_start = int(channel.offsets[start])
            element_end = int(channel.offsets[end])
            assert (
                channel.data["member"][element_start:element_end].tolist()
                == view.column("member").tolist()
            )

    def test_unknown_kind_yields_empty_channel(self):
        simulator = CongestSimulator(complete_graph(4), seed=0)
        delivered = simulator.exchange_phase("empty")
        channel = delivered.channel(A3_V_SCHEMA)
        assert channel.count == 0
        assert channel.receivers.shape[0] == 0

    def test_direct_phase_resets_previous_inboxes(self):
        simulator = CongestSimulator(complete_graph(4), seed=0)
        simulator.context(1).send(0, "stale", bits=1)
        simulator.run_phase("inbox")
        assert simulator.context(0).received() == [(1, "stale")]
        simulator.exchange_phase("direct")
        assert simulator.context(0).received() == []

    def test_object_payloads_still_delivered_on_direct_path(self):
        simulator = CongestSimulator(complete_graph(4), seed=0)
        simulator.context(1).send(0, "hello", bits=3)
        delivered = simulator.exchange_phase("mixed")
        assert delivered.report.bits == 3
        assert simulator.context(0).received() == [(1, "hello")]
        simulator.exchange_phase("next")
        assert simulator.context(0).received() == []

    def test_round_limit_enforced_after_recording(self):
        simulator = CongestSimulator(complete_graph(4), seed=0, round_limit=0)
        simulator.context(0).send(1, "x", bits=5)
        with pytest.raises(RoundLimitExceededError):
            simulator.exchange_phase("over-budget")
        # The phase was recorded before the budget fired, as on the inbox
        # path.
        assert simulator.metrics.total_rounds > 0


class TestGroupChannel:
    def test_sorted_destinations_reuse_staged_arrays(self):
        channel = build_typed_channel(
            A3_S_SCHEMA,
            np.array([3, 4, 5], dtype=np.int64),
            np.array([0, 1, 1], dtype=np.int64),
            {"member": np.array([7, 8, 9], dtype=np.int64)},
            np.array([1, 1, 1], dtype=np.int64),
            None,
            num_nodes=6,
        )
        grouped = group_channel(channel)
        assert grouped.data["member"] is channel.data["member"]
        assert grouped.offsets is channel.offsets
        assert grouped.receivers.tolist() == [0, 1]
        assert grouped.message_bounds.tolist() == [0, 1, 3]

    def test_unsorted_destinations_group_correctly(self):
        channel = build_typed_channel(
            A3_S_SCHEMA,
            np.array([3, 4, 5], dtype=np.int64),
            np.array([2, 0, 2], dtype=np.int64),
            {"member": np.array([7, 8, 9, 10], dtype=np.int64)},
            np.array([2, 1, 1], dtype=np.int64),
            None,
            num_nodes=6,
        )
        grouped = group_channel(channel)
        assert grouped.dst.tolist() == [0, 2, 2]
        assert grouped.src.tolist() == [4, 3, 5]
        assert grouped.data["member"].tolist() == [9, 7, 8, 10]
        assert grouped.element_receivers().tolist() == [0, 2, 2, 2]
        assert grouped.element_senders().tolist() == [4, 3, 3, 5]

    def test_empty_channel(self):
        empty = DeliveredChannel.empty(A3_S_SCHEMA)
        assert empty.count == 0
        assert empty.lengths.shape[0] == 0


class TestAllocationRegression:
    """The ISSUE's allocation bar: a batched Theorem-2 run on G(300, 1/2)
    must build no per-node InboxSlice/TypedInboxView objects."""

    def _count_allocations(self, kernel, num_nodes=300):
        graph = gnp_random_graph(num_nodes, 0.5, seed=42)
        # Arena growth events ("arena:<name>") are counted too but not
        # asserted here; the steady-state bar lives in TestArenaSteadyState.
        counters = {"InboxSlice": 0, "TypedInboxView": 0}

        def hook(kind):
            counters[kind] = counters.get(kind, 0) + 1

        set_allocation_hook(hook)
        try:
            result = TriangleListing(
                repetitions=1, epsilon=0.6, kernel=kernel
            ).run(graph, seed=7)
        finally:
            set_allocation_hook(None)
        return counters, result

    def test_direct_path_builds_no_inbox_objects(self):
        counters, result = self._count_allocations("batched")
        assert counters["InboxSlice"] == 0
        assert counters["TypedInboxView"] == 0
        assert result.cost.rounds > 0

    def test_pernode_path_builds_inbox_objects(self):
        # Sanity check that the hook actually observes the inbox path —
        # a tiny pernode run must allocate per-receiver objects.
        counters, _ = self._count_allocations("pernode", num_nodes=24)
        assert counters["InboxSlice"] > 0
        assert counters["TypedInboxView"] > 0

    @pytest.mark.parametrize("algorithm_seed", [0, 3])
    def test_direct_path_clean_across_seeds_small(self, algorithm_seed):
        graph = gnp_random_graph(40, 0.4, seed=11)
        counters = {"InboxSlice": 0, "TypedInboxView": 0}
        set_allocation_hook(
            lambda kind: counters.__setitem__(kind, counters.get(kind, 0) + 1)
        )
        try:
            TriangleListing(repetitions=2, epsilon=0.5, kernel="batched").run(
                graph, seed=algorithm_seed
            )
        finally:
            set_allocation_hook(None)
        assert counters["InboxSlice"] == 0
        assert counters["TypedInboxView"] == 0


class TestDirtyTracking:
    def test_only_touched_contexts_reset(self):
        simulator = CongestSimulator(complete_graph(5), seed=0)
        runtime = simulator.runtime
        assert runtime._dirty == []
        simulator.context(1).send(0, "a", bits=1)
        simulator.run_phase()
        assert [context.node_id for context in runtime._dirty] == [0]
        simulator.context(2).send(3, "b", bits=1)
        simulator.run_phase()
        assert [context.node_id for context in runtime._dirty] == [3]
        assert simulator.context(0).received() == []

    def test_edgeless_graph_direct_phase(self):
        simulator = CongestSimulator(Graph(3, []), seed=0)
        delivered = simulator.exchange_phase("noop")
        assert delivered.report.messages == 0


class TestArenaSteadyState:
    """The ISSUE's arena bar: on a steady workload — identical phase shape
    every phase — the plane's arena stops growing after warm-up, so phases
    lease every derived flat array (offsets, source/size fills, merged
    accounting arrays, grouped gathers) from pooled buffers and perform
    zero fresh arena allocations."""

    def _stage_steady_phase(self, simulator, src, dst, members, lengths):
        # Two segments of the same kind per phase: exercises the merge
        # concatenations on top of the per-segment staging arrays.
        half = src.shape[0] // 2
        elements = int(lengths[:half].sum())
        simulator.stage_columns(
            A3_S_SCHEMA,
            src[:half],
            dst[:half],
            {"member": members[:elements]},
            lengths=lengths[:half],
        )
        simulator.stage_columns(
            A3_S_SCHEMA,
            src[half:],
            dst[half:],
            {"member": members[elements:]},
            lengths=lengths[half:],
        )
        delivered = simulator.exchange_phase("steady")
        channel = delivered.channel(A3_S_SCHEMA)
        assert channel.count == src.shape[0]
        # Touch the grouped data so the gather path actually runs.
        assert channel.data["member"].shape[0] == members.shape[0]

    def test_zero_arena_growth_in_steady_state(self):
        graph = gnp_random_graph(600, 0.5, seed=42)
        simulator = CongestSimulator(graph, seed=1)
        csr = graph.csr()
        count = 4096
        # Real (src, dst) links, deliberately not destination-sorted so
        # delivery takes the grouping-gather path every phase.
        src = csr.edge_u[:count].copy()
        dst = csr.edge_v[:count].copy()
        rng = np.random.default_rng(5)
        lengths = rng.integers(1, 5, size=count).astype(np.int64)
        members = rng.integers(0, 600, size=int(lengths.sum())).astype(np.int64)

        counters = {}
        set_allocation_hook(
            lambda kind: counters.__setitem__(kind, counters.get(kind, 0) + 1)
        )
        try:
            for _ in range(4):
                self._stage_steady_phase(simulator, src, dst, members, lengths)
            warmup_growth = sum(
                events for kind, events in counters.items()
                if kind.startswith("arena:")
            )
            counters.clear()
            for _ in range(4):
                self._stage_steady_phase(simulator, src, dst, members, lengths)
        finally:
            set_allocation_hook(None)
        # The hook does observe arena growth while the pool fills...
        assert warmup_growth > 0
        # ...and a warmed-up arena serves identical phases allocation-free.
        steady_growth = {
            kind: events for kind, events in counters.items()
            if kind.startswith("arena:")
        }
        assert steady_growth == {}
        # The direct path still builds no per-node delivery objects.
        assert counters.get("InboxSlice", 0) == 0
        assert counters.get("TypedInboxView", 0) == 0

    def test_arena_lease_reuse_and_growth_events(self):
        from repro.congest import PhaseArena
        from repro.congest import runtime as runtime_module

        arena = PhaseArena()
        events = []
        set_allocation_hook(events.append)
        try:
            first = arena.take("offsets", 100)
            assert first.shape == (100,)
            assert events == ["arena:offsets"]
            # Not recycled yet: a same-phase take must grow again.
            arena.take("offsets", 100)
            assert events == ["arena:offsets", "arena:offsets"]
            arena.advance()
            arena.advance()
            # Both leases retired; smaller requests reuse pooled buffers.
            arena.take("offsets", 80)
            arena.take("offsets", 64)
            assert events == ["arena:offsets", "arena:offsets"]
            # Different name or dtype pools separately.
            arena.take("bits", 8)
            assert events[-1] == "arena:bits"
        finally:
            set_allocation_hook(None)
