"""Unit tests for the shared runtime kernel and the vectorized message plane."""

import numpy as np
import pytest

from repro.congest import (
    CliqueSimulator,
    CongestSimulator,
    MessagePlane,
    PhaseTraffic,
    RoundEngine,
    id_bits,
)
from repro.congest.runtime import (
    EMPTY_INBOX,
    InboxSlice,
    deliver_traffic,
    max_link_bits,
    record_deliveries,
    repeated_payload,
)
from repro.congest.metrics import ExecutionMetrics
from repro.errors import SimulationError, TopologyError
from repro.graphs import Graph, complete_graph, cycle_graph


def star_graph(leaves: int) -> Graph:
    return Graph(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


class TestMessagePlane:
    def test_scalar_and_bulk_appends_preserve_global_order(self):
        plane = MessagePlane(num_nodes=8)
        plane.append(0, 1, "a", 1)
        plane.extend(
            2,
            np.array([3, 4], dtype=np.int64),
            ["b", "c"],
            np.array([2, 2], dtype=np.int64),
        )
        plane.append(5, 6, "d", 1)
        traffic = plane.flush()
        assert traffic.src.tolist() == [0, 2, 2, 5]
        assert traffic.dst.tolist() == [1, 3, 4, 6]
        assert list(traffic.payloads) == ["a", "b", "c", "d"]
        assert plane.is_empty

    def test_flush_resolves_default_bit_sizes(self):
        plane = MessagePlane(num_nodes=16)
        plane.append(0, 1, 7, None)  # an identifier: id_bits(16) = 4
        plane.append(0, 1, True, None)  # a flag: 1 bit
        traffic = plane.flush()
        assert traffic.bits.tolist() == [id_bits(16), 1]

    def test_flush_rejects_negative_sizes(self):
        plane = MessagePlane(num_nodes=4)
        plane.append(0, 1, "x", -3)
        with pytest.raises(SimulationError):
            plane.flush()

    def test_flush_on_empty_plane(self):
        traffic = MessagePlane(num_nodes=4).flush()
        assert traffic.count == 0
        assert traffic.total_bits == 0

    def test_len_counts_queued_messages(self):
        plane = MessagePlane(num_nodes=4)
        plane.append(0, 1, "x", 1)
        plane.extend(
            1,
            np.array([2, 3], dtype=np.int64),
            repeated_payload("y", 2),
            np.array([1, 1], dtype=np.int64),
        )
        assert len(plane) == 3


class TestAggregations:
    def _traffic(self, src, dst, bits):
        count = len(src)
        payloads = np.empty(count, dtype=object)
        payloads[:] = "p"
        return PhaseTraffic(
            src=np.array(src, dtype=np.int64),
            dst=np.array(dst, dtype=np.int64),
            bits=np.array(bits, dtype=np.int64),
            payloads=payloads,
        )

    def test_max_link_bits_accumulates_per_directed_link(self):
        traffic = self._traffic([0, 0, 1], [1, 1, 0], [3, 4, 5])
        assert max_link_bits(traffic, num_nodes=4) == 7

    def test_max_link_bits_dense_and_sorted_paths_agree(self):
        rng = np.random.default_rng(7)
        src = rng.integers(0, 50, size=500).tolist()
        dst = ((np.array(src) + 1 + rng.integers(0, 49, size=500)) % 50).tolist()
        bits = rng.integers(1, 9, size=500).tolist()
        traffic = self._traffic(src, dst, bits)
        # num_nodes=50 keeps the key span dense (bincount path); 300_000
        # blows it past 4x the message count (sort-and-segment fallback).
        # Same traffic, same answer.
        assert max_link_bits(traffic, 50) == max_link_bits(traffic, 300_000)

    def test_record_deliveries_only_touches_receivers(self):
        metrics = ExecutionMetrics()
        traffic = self._traffic([0, 0], [2, 2], [3, 4])
        record_deliveries(metrics, traffic)
        assert metrics.bits_received_per_node == {2: 7}
        assert metrics.messages_received_per_node == {2: 2}


class TestLazyInboxes:
    def test_deliver_traffic_resets_non_receivers(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        simulator.context(0).send(1, "x", bits=1)
        simulator.run_phase()
        assert simulator.context(1).received() == [(0, "x")]
        simulator.run_phase()
        assert simulator.context(1).received() == []

    def test_inbox_slice_materializes_once_and_copies_out(self):
        src = np.array([3, 5], dtype=np.int64)
        payloads = np.empty(2, dtype=object)
        payloads[:] = ["a", "b"]
        inbox = InboxSlice(src, payloads)
        first = inbox.pairs()
        assert first == [(3, "a"), (5, "b")]
        assert inbox.pairs() is first  # cached
        assert len(inbox) == 2
        assert list(inbox) == first

    def test_received_views_are_independent_copies(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        simulator.context(0).send(1, "x", bits=1)
        simulator.run_phase()
        got = simulator.context(1).received()
        got.append(("junk", None))
        assert simulator.context(1).received() == [(0, "x")]

    def test_empty_inbox_constant_is_immutable(self):
        assert EMPTY_INBOX == ()


class TestBulkSend:
    def test_bulk_send_equivalent_to_scalar_sends(self):
        graph = complete_graph(5)
        bulk = CongestSimulator(graph, seed=1)
        scalar = CongestSimulator(graph, seed=1)

        bulk.context(0).bulk_send([1, 2, 3], ["a", "b", "c"], bits=4)
        for destination, payload in zip([1, 2, 3], ["a", "b", "c"]):
            scalar.context(0).send(destination, payload, bits=4)

        bulk_report = bulk.run_phase()
        scalar_report = scalar.run_phase()
        assert bulk_report.rounds == scalar_report.rounds
        assert bulk_report.messages == scalar_report.messages
        assert bulk_report.bits == scalar_report.bits
        for node in (1, 2, 3):
            assert bulk.context(node).received() == scalar.context(node).received()

    def test_bulk_send_per_message_sizes(self):
        simulator = CongestSimulator(star_graph(3), seed=0)
        simulator.context(0).bulk_send([1, 2, 3], ["a", "bb", "ccc"], bits=[1, 2, 3])
        report = simulator.run_phase()
        assert report.bits == 6
        assert report.max_link_bits == 3

    def test_bulk_send_rejects_length_mismatch(self):
        simulator = CongestSimulator(star_graph(3), seed=0)
        with pytest.raises(SimulationError):
            simulator.context(0).bulk_send([1, 2], ["only-one"], bits=1)
        with pytest.raises(SimulationError):
            simulator.context(0).bulk_send([1, 2], ["a", "b"], bits=[1])

    def test_bulk_send_rejects_self_and_non_targets(self):
        simulator = CongestSimulator(cycle_graph(5), seed=0)
        with pytest.raises(TopologyError):
            simulator.context(0).bulk_send([1, 0], ["a", "b"], bits=1)
        with pytest.raises(TopologyError):
            simulator.context(0).bulk_send([1, 2], ["a", "b"], bits=1)
        with pytest.raises(TopologyError):
            simulator.context(0).bulk_send([1, 99], ["a", "b"], bits=1)

    def test_bulk_send_copies_caller_arrays(self):
        # Mutating the caller's arrays after bulk_send must not alter (or
        # un-validate) the queued messages.
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        destinations = np.array([1, 3], dtype=np.int64)
        sizes = np.array([2, 2], dtype=np.int64)
        simulator.context(0).bulk_send(destinations, ["a", "b"], bits=sizes)
        destinations[0] = 2  # not a neighbour of node 0
        sizes[0] = 999
        report = simulator.run_phase()
        assert report.bits == 4
        assert simulator.context(1).received() == [(0, "a")]
        assert simulator.context(2).received() == []

    def test_bulk_send_copies_object_payload_arrays(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        payloads = np.empty(2, dtype=object)
        payloads[:] = [("a",), ("b",)]
        simulator.context(0).bulk_send([1, 3], payloads, bits=4)
        payloads[0] = ("mutated",)
        simulator.run_phase()
        assert simulator.context(1).received() == [(0, ("a",))]

    def test_bulk_send_accepts_zero_dim_bits_array(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        simulator.context(0).bulk_send([1, 3], ["a", "b"], bits=np.array(4))
        report = simulator.run_phase()
        assert report.bits == 8

    def test_explicit_negative_bits_never_treated_as_default(self):
        # Any negative explicit size must be rejected — including values
        # that could collide with an internal "unset" encoding.
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        simulator.context(0).send(1, "x", bits=-(2**62))
        with pytest.raises(SimulationError):
            simulator.run_phase()

    def test_bulk_send_empty_is_noop(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        simulator.context(0).bulk_send([], [], bits=1)
        assert simulator.run_phase().messages == 0

    def test_broadcast_bits_equivalent_to_broadcast(self):
        graph = star_graph(4)
        fast = CongestSimulator(graph, seed=2)
        slow = CongestSimulator(graph, seed=2)
        fast.context(0).broadcast_bits(("ping", 1), bits=5)
        slow.context(0).broadcast(("ping", 1), bits=5)
        fast_report = fast.run_phase()
        slow_report = slow.run_phase()
        assert fast_report.rounds == slow_report.rounds
        assert fast_report.messages == slow_report.messages
        for leaf in range(1, 5):
            assert fast.context(leaf).received() == slow.context(leaf).received()

    def test_bulk_send_on_clique_reaches_non_neighbors(self):
        simulator = CliqueSimulator(cycle_graph(6), seed=0)
        simulator.context(0).bulk_send([2, 3, 4], ["x", "y", "z"], bits=3)
        simulator.run_phase()
        assert simulator.context(3).received() == [(0, "y")]


class TestCliqueLaziness:
    def test_clique_targets_not_materialized_until_read(self):
        simulator = CliqueSimulator(cycle_graph(6), seed=0)
        context = simulator.context(0)
        assert context._comm_targets is None  # O(n) construction, not O(n²)
        assert context.can_send_to(3)
        assert context._comm_targets is None  # membership check stays lazy
        assert context.communication_targets == frozenset({1, 2, 3, 4, 5})
        # Reading the property must not overwrite the sentinel (that would
        # silently disable the clique range-check fast path).
        assert context._comm_targets is None
        assert context.communication_targets is context.communication_targets


class TestRuntimeSharing:
    def test_both_engines_expose_the_same_kernel_type(self):
        graph = cycle_graph(4)
        simulator = CongestSimulator(graph, seed=0)
        engine = RoundEngine(graph, seed=0)
        assert type(simulator.runtime) is type(engine.runtime)
        assert simulator.runtime.plane.is_empty
        assert engine.runtime.plane.is_empty

    def test_strict_run_records_through_record_phase(self):
        engine = RoundEngine(cycle_graph(4), seed=0)

        def one_ping(ctx):
            if ctx.node_id == 0:
                ctx.send(1, 9)
            yield

        engine.run(one_ping)
        # The run is one phase report whose totals satisfy the
        # ExecutionMetrics invariant: totals == sum over phases.
        metrics = engine.metrics
        assert len(metrics.phases) == 1
        report = metrics.phases[0]
        assert report.name == "strict-run"
        assert metrics.total_rounds == report.rounds == 1
        assert metrics.total_messages == report.messages == 1
        assert metrics.total_bits == report.bits == id_bits(4)

    def test_strict_run_reports_per_run_counters(self):
        engine = RoundEngine(cycle_graph(4), seed=0)

        def one_ping(ctx):
            if ctx.node_id == 0:
                ctx.send(1, 9)
            yield

        engine.run(one_ping)
        engine.run(one_ping)
        first, second = engine.metrics.phases
        # The second report covers only the second run, not cumulative totals.
        assert first.messages == second.messages == 1
        assert engine.metrics.total_messages == 2


class TestDeliverTraffic:
    def test_grouped_delivery_matches_send_order(self):
        simulator = CongestSimulator(complete_graph(4), seed=0)
        simulator.context(1).send(0, "first", bits=1)
        simulator.context(2).send(0, "second", bits=1)
        simulator.context(3).send(0, "third", bits=1)
        simulator.run_phase()
        assert simulator.context(0).received() == [
            (1, "first"),
            (2, "second"),
            (3, "third"),
        ]

    def test_deliver_traffic_helper_on_raw_contexts(self):
        simulator = CongestSimulator(cycle_graph(3), seed=0)
        payloads = np.empty(1, dtype=object)
        payloads[:] = ["hello"]
        traffic = PhaseTraffic(
            src=np.array([1], dtype=np.int64),
            dst=np.array([0], dtype=np.int64),
            bits=np.array([2], dtype=np.int64),
            payloads=payloads,
        )
        deliver_traffic(simulator.contexts, traffic)
        assert simulator.context(0).received() == [(1, "hello")]
        assert simulator.context(2).received() == []


class TestColumnarPlane:
    """The typed columnar payload channels (schema path)."""

    def _flag_schema(self):
        from repro.congest.wire import A3_IN_X_SCHEMA

        return A3_IN_X_SCHEMA

    def _list_schema(self):
        from repro.congest.wire import A3_S_SCHEMA

        return A3_S_SCHEMA

    def test_extend_columns_counts_and_sizes(self):
        from repro.congest.wire import A3_S_SCHEMA

        plane = MessagePlane(num_nodes=16)
        plane.extend_columns(
            A3_S_SCHEMA,
            0,
            np.array([1, 2, 3], dtype=np.int64),
            {"member": np.array([4, 5, 6], dtype=np.int64)},
            lengths=np.array([2, 0, 1], dtype=np.int64),
        )
        assert len(plane) == 3
        traffic = plane.flush()
        assert traffic.count == 3
        # id_bits(16) = 4: sizes are max(1, len * 4).
        assert traffic.bits.tolist() == [8, 1, 4]
        assert len(traffic.channels) == 1
        channel = traffic.channels[0]
        assert channel.schema is A3_S_SCHEMA
        assert channel.lengths.tolist() == [2, 0, 1]

    def test_flat_arrays_cover_typed_and_untyped_messages(self):
        from repro.congest.wire import A3_IN_X_SCHEMA

        plane = MessagePlane(num_nodes=8)
        plane.append(0, 1, "scalar", 5)
        plane.extend_columns(
            A3_IN_X_SCHEMA,
            2,
            np.array([3, 4], dtype=np.int64),
            {"flag": np.array([1, 0], dtype=np.int64)},
        )
        traffic = plane.flush()
        assert traffic.count == 3
        assert traffic.total_bits == 5 + 1 + 1
        # The object-payload block keeps global send order; typed messages
        # follow it in the flat accounting arrays.
        assert traffic.payloads.shape[0] == 1
        assert traffic.src.tolist() == [0, 2, 2]

    def test_typed_delivery_views_and_decoded_pairs(self):
        from repro.congest.wire import A3_S_SCHEMA

        simulator = CongestSimulator(complete_graph(5), seed=0)
        context = simulator.context(0)
        context.send_columns(
            A3_S_SCHEMA,
            np.array([1, 2], dtype=np.int64),
            {"member": np.array([3, 4, 2], dtype=np.int64)},
            lengths=np.array([2, 1], dtype=np.int64),
        )
        simulator.run_phase("typed")
        view = simulator.context(1).received_columns(A3_S_SCHEMA)
        assert view.count == 1
        assert view.senders.tolist() == [0]
        assert view.column("member").tolist() == [3, 4]
        # The pair list decodes through the schema codec.
        assert simulator.context(1).received() == [(0, ("S", (3, 4)))]
        assert simulator.context(2).received() == [(0, ("S", (2,)))]
        # Nodes without typed traffic see the empty view.
        assert simulator.context(3).received_columns(A3_S_SCHEMA).count == 0

    def test_interleaved_ragged_batches_group_correctly(self):
        from repro.congest.wire import A3_S_SCHEMA

        simulator = CongestSimulator(complete_graph(6), seed=0)
        # Two senders target the same receiver with different lengths; the
        # element gather must keep each message's block intact.
        simulator.context(1).send_columns(
            A3_S_SCHEMA,
            np.array([0, 2], dtype=np.int64),
            {"member": np.array([5, 4, 3], dtype=np.int64)},
            lengths=np.array([2, 1], dtype=np.int64),
        )
        simulator.context(2).send_columns(
            A3_S_SCHEMA,
            np.array([0], dtype=np.int64),
            {"member": np.array([1, 2, 3], dtype=np.int64)},
            lengths=np.array([3], dtype=np.int64),
        )
        simulator.run_phase("typed")
        view = simulator.context(0).received_columns(A3_S_SCHEMA)
        assert view.count == 2
        by_sender = {
            int(sender): view.column("member")[
                view.offsets[index] : view.offsets[index + 1]
            ].tolist()
            for index, sender in enumerate(view.senders)
        }
        assert by_sender == {1: [5, 4], 2: [1, 2, 3]}

    def test_mixed_typed_and_scalar_inbox(self):
        from repro.congest.wire import A3_IN_X_SCHEMA

        simulator = CongestSimulator(complete_graph(4), seed=0)
        simulator.context(1).send(0, ("tag", 3), bits=7)
        simulator.context(2).send_columns(
            A3_IN_X_SCHEMA,
            np.array([0], dtype=np.int64),
            {"flag": np.array([1], dtype=np.int64)},
        )
        report = simulator.run_phase("mixed")
        assert report.messages == 2
        assert report.bits == 8
        inbox = simulator.context(0).received()
        assert (1, ("tag", 3)) in inbox
        assert (2, ("in_X", True)) in inbox
        assert len(simulator.context(0)._inbox) == 2

    def test_send_columns_validates_topology(self):
        from repro.congest.wire import A3_IN_X_SCHEMA

        simulator = CongestSimulator(cycle_graph(5), seed=0)
        context = simulator.context(0)
        with pytest.raises(TopologyError):
            context.send_columns(
                A3_IN_X_SCHEMA,
                np.array([2], dtype=np.int64),  # not a cycle neighbour of 0
                {"flag": np.array([1], dtype=np.int64)},
            )
        with pytest.raises(TopologyError):
            context.send_columns(
                A3_IN_X_SCHEMA,
                np.array([0], dtype=np.int64),
                {"flag": np.array([1], dtype=np.int64)},
            )

    def test_extend_columns_validates_shapes(self):
        from repro.congest.wire import A3_S_SCHEMA

        plane = MessagePlane(num_nodes=8)
        with pytest.raises(SimulationError):
            plane.extend_columns(
                A3_S_SCHEMA,
                0,
                np.array([1, 2], dtype=np.int64),
                {"member": np.array([3], dtype=np.int64)},
                lengths=np.array([1, 1], dtype=np.int64),
            )
        with pytest.raises(SimulationError):
            plane.extend_columns(
                A3_S_SCHEMA,
                0,
                np.array([1], dtype=np.int64),
                {"wrong": np.array([3], dtype=np.int64)},
                lengths=np.array([1], dtype=np.int64),
            )
        with pytest.raises(SimulationError):
            # Ragged schema without lengths.
            plane.extend_columns(
                A3_S_SCHEMA,
                0,
                np.array([1], dtype=np.int64),
                {"member": np.array([3], dtype=np.int64)},
            )

    def test_bulk_output_triangles_matches_scalar(self):
        simulator = CongestSimulator(complete_graph(4), seed=0)
        scalar = simulator.context(0)
        bulk = simulator.context(1)
        scalar.output_triangle(3, 1, 2)
        scalar.output_triangle(2, 3, 0)
        bulk.output_triangles(
            np.array([3, 2], dtype=np.int64),
            np.array([1, 3], dtype=np.int64),
            np.array([2, 0], dtype=np.int64),
        )
        assert scalar.output == bulk.output
        with pytest.raises(SimulationError):
            bulk.output_triangles(
                np.array([1], dtype=np.int64),
                np.array([1], dtype=np.int64),
                np.array([2], dtype=np.int64),
            )
