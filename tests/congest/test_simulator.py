"""Unit tests for the phase-based CONGEST simulator and node contexts."""

import pytest

from repro.congest import BandwidthPolicy, CongestSimulator, NodeContext, id_bits
from repro.errors import RoundLimitExceededError, SimulationError, TopologyError
from repro.graphs import Graph, complete_graph, cycle_graph


def star_graph(leaves: int) -> Graph:
    """A star with the centre at node 0."""
    return Graph(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


class TestConstruction:
    def test_empty_network_rejected(self):
        with pytest.raises(SimulationError):
            CongestSimulator(Graph(0))

    def test_contexts_expose_local_view_only(self):
        graph = cycle_graph(5)
        simulator = CongestSimulator(graph, seed=1)
        for context in simulator.contexts:
            assert context.num_nodes == 5
            assert context.neighbors == graph.neighbors(context.node_id)
            assert context.communication_targets == graph.neighbors(context.node_id)

    def test_model_name(self):
        assert CongestSimulator(cycle_graph(4)).model_name == "CONGEST"

    def test_per_node_rngs_are_independent_but_reproducible(self):
        graph = cycle_graph(6)
        first = CongestSimulator(graph, seed=5)
        second = CongestSimulator(graph, seed=5)
        draws_first = [ctx.rng.random() for ctx in first.contexts]
        draws_second = [ctx.rng.random() for ctx in second.contexts]
        assert draws_first == draws_second
        assert len(set(draws_first)) == len(draws_first)

    def test_repr(self):
        assert "n=4" in repr(CongestSimulator(cycle_graph(4)))


class TestSendValidation:
    def test_send_to_non_neighbor_rejected(self):
        simulator = CongestSimulator(cycle_graph(5), seed=0)
        with pytest.raises(TopologyError):
            simulator.context(0).send(2, "x", bits=1)

    def test_send_to_self_rejected(self):
        simulator = CongestSimulator(cycle_graph(5), seed=0)
        with pytest.raises(TopologyError):
            simulator.context(0).send(0, "x", bits=1)

    def test_negative_bits_rejected(self):
        simulator = CongestSimulator(cycle_graph(5), seed=0)
        simulator.context(0).send(1, "x", bits=-3)
        with pytest.raises(SimulationError):
            simulator.run_phase()


class TestPhaseAccounting:
    def test_empty_phase_costs_zero_rounds(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        report = simulator.run_phase("idle")
        assert report.rounds == 0
        assert simulator.total_rounds == 0

    def test_single_id_costs_one_round(self):
        graph = cycle_graph(8)
        simulator = CongestSimulator(graph, seed=0)
        simulator.context(0).send(1, 7)
        report = simulator.run_phase()
        assert report.rounds == 1
        assert report.messages == 1

    def test_rounds_follow_max_link_load(self):
        # Node 0 sends k identifiers to node 1; with the default bandwidth of
        # max(8, ceil(log2 n)) bits and id_bits(n) bits per identifier the
        # phase must charge ceil(k * id_bits / B) rounds.
        graph = cycle_graph(64)
        policy = BandwidthPolicy(minimum_bits=1)
        simulator = CongestSimulator(graph, bandwidth=policy, seed=0)
        payload = tuple(range(10))
        simulator.context(0).send(1, payload)
        report = simulator.run_phase()
        expected_bits = 10 * id_bits(64)
        assert report.max_link_bits == expected_bits
        assert report.rounds == -(-expected_bits // policy.bits_per_round(64))

    def test_parallel_links_do_not_add_up(self):
        # Different links carry data simultaneously: the phase cost is the
        # max, not the sum.
        graph = star_graph(6)
        simulator = CongestSimulator(graph, seed=0)
        for leaf in range(1, 7):
            simulator.context(leaf).send(0, leaf)
        report = simulator.run_phase()
        assert report.rounds == 1
        assert report.messages == 6

    def test_same_link_loads_accumulate(self):
        graph = cycle_graph(32)
        policy = BandwidthPolicy(minimum_bits=1)
        simulator = CongestSimulator(graph, bandwidth=policy, seed=0)
        context = simulator.context(0)
        for _ in range(4):
            context.send(1, 3)
        report = simulator.run_phase()
        assert report.rounds == -(-4 * id_bits(32) // policy.bits_per_round(32))

    def test_extra_rounds_added(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        report = simulator.run_phase("sync", extra_rounds=3)
        assert report.rounds == 3

    def test_explicit_bits_override_default(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        simulator.context(0).send(1, ("big", (1, 2, 3)), bits=1)
        report = simulator.run_phase()
        assert report.max_link_bits == 1

    def test_metrics_track_received_bits_per_node(self):
        simulator = CongestSimulator(star_graph(3), seed=0)
        for leaf in (1, 2, 3):
            simulator.context(leaf).send(0, leaf, bits=4)
        simulator.run_phase()
        assert simulator.metrics.bits_received_per_node[0] == 12
        assert simulator.metrics.max_bits_received() == 12

    def test_charge_rounds(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        simulator.charge_rounds(5, "fixed")
        assert simulator.total_rounds == 5
        with pytest.raises(SimulationError):
            simulator.charge_rounds(-1)


class TestDelivery:
    def test_messages_arrive_with_sender(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        simulator.context(0).send(1, ("hello", 0))
        simulator.run_phase()
        received = simulator.context(1).received()
        assert received == [(0, ("hello", 0))]
        assert simulator.context(1).received_from(0) == [("hello", 0)]
        assert simulator.context(1).received_senders() == {0}

    def test_inbox_replaced_each_phase(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0)
        simulator.context(0).send(1, 1)
        simulator.run_phase()
        simulator.run_phase()
        assert simulator.context(1).received() == []

    def test_broadcast_reaches_all_neighbors(self):
        simulator = CongestSimulator(star_graph(4), seed=0)
        simulator.context(0).broadcast(("ping", True), bits=2)
        simulator.run_phase()
        for leaf in range(1, 5):
            assert simulator.context(leaf).received() == [(0, ("ping", True))]

    def test_for_each_node_runs_in_id_order(self):
        simulator = CongestSimulator(cycle_graph(5), seed=0)
        visited = []
        simulator.for_each_node(lambda ctx: visited.append(ctx.node_id))
        assert visited == [0, 1, 2, 3, 4]


class TestRoundLimit:
    def test_limit_exceeded_raises(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0, round_limit=2)
        simulator.context(0).send(1, (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16))
        with pytest.raises(RoundLimitExceededError):
            simulator.run_phase()

    def test_limit_not_exceeded(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0, round_limit=5)
        simulator.context(0).send(1, 1)
        simulator.run_phase()
        assert simulator.total_rounds <= 5
        assert simulator.round_limit == 5

    def test_charge_rounds_respects_limit(self):
        simulator = CongestSimulator(cycle_graph(4), seed=0, round_limit=3)
        with pytest.raises(RoundLimitExceededError):
            simulator.charge_rounds(10)


class TestOutputs:
    def test_output_triangle_collection(self):
        simulator = CongestSimulator(complete_graph(4), seed=0)
        simulator.context(2).output_triangle(3, 1, 0)
        outputs = simulator.collect_outputs()
        assert outputs[2] == frozenset({(0, 1, 3)})
        assert outputs[0] == frozenset()

    def test_output_deduplicates(self):
        simulator = CongestSimulator(complete_graph(4), seed=0)
        context = simulator.context(0)
        context.output_triangle(1, 2, 3)
        context.output_triangle(3, 2, 1)
        assert len(context.output) == 1

    def test_context_repr(self):
        simulator = CongestSimulator(cycle_graph(3), seed=0)
        assert "NodeContext" in repr(simulator.context(0))
