"""Cross-engine equivalence on the clique topology and the bulk-send path.

The original cross-validation (``test_engine.py``) checks that a
phase-synchronous protocol costs the same rounds on the phase-based
simulator and the strict round-by-round engine for standard CONGEST
topologies.  This module extends the check in the two directions the
runtime-kernel refactor added:

* the **clique model** — on a complete input graph the CONGEST clique's
  communication topology coincides with the input graph, so the same
  protocol can be driven on :class:`CliqueSimulator` and on the strict
  engine and must agree on rounds, messages, and per-node deliveries;
* the **bulk-send fast path** — enqueueing through
  :meth:`~repro.congest.node.NodeContext.bulk_send` /
  :meth:`~repro.congest.node.NodeContext.broadcast_bits` must be
  observationally identical to scalar sends, phase for phase.
"""

from repro.congest import (
    BandwidthPolicy,
    CliqueSimulator,
    CongestSimulator,
    RoundEngine,
    id_bits,
)
from repro.graphs import barabasi_albert_graph, complete_graph, cycle_graph


class TestCliqueCrossEngine:
    """The same broadcast protocol on the clique simulator and strict engine."""

    def test_neighborhood_exchange_costs_match_on_clique(self):
        graph = complete_graph(6)
        policy = BandwidthPolicy(minimum_bits=1)

        # Strict engine: every node streams its neighbour list, one
        # identifier per round per link.
        engine = RoundEngine(graph, bandwidth=policy, seed=0)

        def exchange(ctx):
            queues = {nbr: list(sorted(ctx.neighbors)) for nbr in ctx.neighbors}
            while any(queues.values()):
                for nbr, queue in queues.items():
                    if queue:
                        ctx.send(nbr, queue.pop(0))
                yield

        strict_rounds = engine.run(exchange)

        # Clique simulator: the same data enqueued in one phase through the
        # bulk broadcast path.
        simulator = CliqueSimulator(graph, bandwidth=policy, seed=0)

        def enqueue(ctx):
            neighbors = sorted(ctx.neighbors)
            bits = len(neighbors) * id_bits(ctx.num_nodes)
            ctx.broadcast_bits(("N", tuple(neighbors)), bits=bits)

        simulator.for_each_node(enqueue)
        phase_rounds = simulator.run_phase().rounds

        assert strict_rounds == phase_rounds
        # Message granularity differs (one id per strict message vs one
        # packed list per phase message) but the bits on the wire agree.
        assert engine.metrics.total_bits == simulator.metrics.total_bits

    def test_single_message_costs_match_on_clique(self):
        graph = complete_graph(9)
        policy = BandwidthPolicy(minimum_bits=1)

        engine = RoundEngine(graph, bandwidth=policy, seed=0)

        def send_once(ctx):
            if ctx.node_id == 0:
                ctx.send(1, 5)
            yield

        strict_rounds = engine.run(send_once)

        simulator = CliqueSimulator(graph, seed=0, bandwidth=policy)
        simulator.context(0).send(1, 5)
        assert strict_rounds == simulator.run_phase().rounds == 1

    def test_per_node_delivery_tallies_match(self):
        graph = complete_graph(5)
        policy = BandwidthPolicy(minimum_bits=1)

        engine = RoundEngine(graph, bandwidth=policy, seed=0)

        def announce(ctx):
            for neighbor in sorted(ctx.neighbors):
                ctx.send(neighbor, ctx.node_id)
            yield

        engine.run(announce)

        simulator = CliqueSimulator(graph, bandwidth=policy, seed=0)

        def enqueue(ctx):
            ctx.broadcast_bits(ctx.node_id, bits=id_bits(ctx.num_nodes))

        simulator.for_each_node(enqueue)
        simulator.run_phase()

        assert (
            engine.metrics.bits_received_per_node
            == simulator.metrics.bits_received_per_node
        )
        assert (
            engine.metrics.messages_received_per_node
            == simulator.metrics.messages_received_per_node
        )


class TestBarabasiAlbertCrossEngine:
    """Cross-engine equivalence on a skewed-degree CSR-built workload.

    Both engines now snapshot their topology from the graph's CSR view; a
    Barabási–Albert workload (bulk-built, skewed degrees, hub nodes) is the
    natural stress case for that shared substrate: the same
    neighbourhood-announcement protocol must report identical rounds, bits,
    and per-node deliveries on the phase simulator and the strict engine.
    """

    def test_neighborhood_announcement_costs_match(self):
        graph = barabasi_albert_graph(24, 3, seed=5)
        policy = BandwidthPolicy(minimum_bits=1)

        engine = RoundEngine(graph, bandwidth=policy, seed=0)

        def announce(ctx):
            for neighbor in sorted(ctx.neighbors):
                ctx.send(neighbor, ctx.node_id)
            yield

        strict_rounds = engine.run(announce)

        simulator = CongestSimulator(graph, bandwidth=policy, seed=0)

        def enqueue(ctx):
            ctx.broadcast_bits(ctx.node_id, bits=id_bits(ctx.num_nodes))

        simulator.for_each_node(enqueue)
        phase_rounds = simulator.run_phase("announce").rounds

        assert strict_rounds == phase_rounds
        assert engine.metrics.total_bits == simulator.metrics.total_bits
        assert (
            engine.metrics.bits_received_per_node
            == simulator.metrics.bits_received_per_node
        )
        assert (
            engine.metrics.messages_received_per_node
            == simulator.metrics.messages_received_per_node
        )

    def test_contexts_expose_graph_neighborhoods(self):
        graph = barabasi_albert_graph(30, 2, seed=9)
        simulator = CongestSimulator(graph, seed=1)
        engine = RoundEngine(graph, seed=1)
        for node in graph.nodes():
            expected = graph.neighbors(node)
            assert simulator.context(node).neighbors == expected
            assert engine.contexts[node].neighbors == expected


class TestBulkPathCrossEngine:
    """bulk_send must be indistinguishable from scalar sends, phase for phase."""

    def test_bulk_and_scalar_runs_report_identical_round_counts(self):
        graph = complete_graph(7)
        policy = BandwidthPolicy(minimum_bits=1)

        scalar_sim = CongestSimulator(graph, bandwidth=policy, seed=3)
        bulk_sim = CongestSimulator(graph, bandwidth=policy, seed=3)

        for phase in range(3):
            for ctx in scalar_sim.contexts:
                for neighbor in sorted(ctx.neighbors):
                    ctx.send(neighbor, (phase, ctx.node_id), bits=4)
            for ctx in bulk_sim.contexts:
                targets = sorted(ctx.neighbors)
                ctx.bulk_send(
                    targets, [(phase, ctx.node_id)] * len(targets), bits=4
                )
            scalar_report = scalar_sim.run_phase(f"phase-{phase}")
            bulk_report = bulk_sim.run_phase(f"phase-{phase}")
            assert scalar_report.rounds == bulk_report.rounds
            assert scalar_report.messages == bulk_report.messages
            assert scalar_report.bits == bulk_report.bits
            assert scalar_report.max_link_bits == bulk_report.max_link_bits

        assert scalar_sim.total_rounds == bulk_sim.total_rounds
        for node in range(graph.num_nodes):
            assert sorted(scalar_sim.context(node).received()) == sorted(
                bulk_sim.context(node).received()
            )

    def test_bulk_path_matches_strict_engine_on_cycle(self):
        graph = cycle_graph(8)
        policy = BandwidthPolicy(minimum_bits=1)

        engine = RoundEngine(graph, bandwidth=policy, seed=0)

        def ping_neighbors(ctx):
            for neighbor in sorted(ctx.neighbors):
                ctx.send(neighbor, ctx.node_id)
            yield

        strict_rounds = engine.run(ping_neighbors)

        simulator = CongestSimulator(graph, bandwidth=policy, seed=0)

        def enqueue(ctx):
            targets = sorted(ctx.neighbors)
            ctx.bulk_send(
                targets,
                [ctx.node_id] * len(targets),
                bits=id_bits(ctx.num_nodes),
            )

        simulator.for_each_node(enqueue)
        assert simulator.run_phase().rounds == strict_rounds
