"""Unit tests for the CONGEST clique simulator."""

import pytest

from repro.congest import CliqueSimulator, CongestSimulator
from repro.errors import TopologyError
from repro.graphs import Graph, cycle_graph


class TestCliqueTopology:
    def test_model_name(self):
        assert CliqueSimulator(cycle_graph(4)).model_name == "CONGEST clique"

    def test_can_send_to_non_graph_neighbor(self):
        simulator = CliqueSimulator(cycle_graph(6), seed=0)
        simulator.context(0).send(3, "direct", bits=4)
        simulator.run_phase()
        assert simulator.context(3).received() == [(0, "direct")]

    def test_cannot_send_to_self(self):
        simulator = CliqueSimulator(cycle_graph(4), seed=0)
        with pytest.raises(TopologyError):
            simulator.context(0).send(0, "x", bits=1)

    def test_graph_neighbors_still_reflect_input_graph(self):
        graph = cycle_graph(5)
        simulator = CliqueSimulator(graph, seed=0)
        for context in simulator.contexts:
            assert context.neighbors == graph.neighbors(context.node_id)
            assert context.communication_targets == frozenset(
                v for v in range(5) if v != context.node_id
            )

    def test_broadcast_still_limited_to_graph_neighbors(self):
        # A "broadcast" in the paper's sense goes over incident edges of G;
        # the clique only widens point-to-point addressing.
        graph = Graph(4, [(0, 1)])
        simulator = CliqueSimulator(graph, seed=0)
        simulator.context(0).broadcast("hi", bits=2)
        simulator.run_phase()
        assert simulator.context(1).received() == [(0, "hi")]
        assert simulator.context(2).received() == []


class TestCliqueAccounting:
    def test_disjoint_pairs_run_in_parallel(self):
        simulator = CliqueSimulator(Graph(6), seed=0)
        simulator.context(0).send(1, 5)
        simulator.context(2).send(3, 5)
        simulator.context(4).send(5, 5)
        report = simulator.run_phase()
        assert report.rounds == 1
        assert report.messages == 3

    def test_same_link_still_serialises(self):
        simulator = CliqueSimulator(Graph(40), seed=0)
        for _ in range(20):
            simulator.context(0).send(1, 7)
        report = simulator.run_phase()
        assert report.rounds > 1

    def test_clique_never_slower_than_congest_on_same_protocol(self):
        # The same sends over the same links cost the same in both models;
        # the clique only adds links.
        graph = cycle_graph(8)
        congest = CongestSimulator(graph, seed=0)
        clique = CliqueSimulator(graph, seed=0)
        for simulator in (congest, clique):
            simulator.context(0).send(1, (1, 2, 3, 4))
            simulator.context(3).send(4, (5, 6))
        assert clique.run_phase().rounds == congest.run_phase().rounds
