"""Top-level API hygiene: every advertised name actually imports.

Walks every module in the ``repro`` package; wherever a module declares
``__all__``, each listed name must resolve with ``getattr``.  This pins
the public surface against the classic refactoring failure mode where a
re-export list silently drifts away from the module contents.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro


def _iter_module_names():
    yield "repro"
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield module_info.name


_MODULE_NAMES = sorted(set(_iter_module_names()))


@pytest.mark.parametrize("module_name", _MODULE_NAMES)
def test_every_name_in_all_imports(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    assert len(set(exported)) == len(exported), f"{module_name}: duplicate __all__ entries"
    for name in exported:
        assert hasattr(module, name), (
            f"{module_name}.__all__ lists {name!r} but the module does not "
            "define it"
        )


def test_api_package_is_exported_from_repro():
    assert "api" in repro.__all__
    assert repro.api is importlib.import_module("repro.api")


def test_star_import_packages_have_all():
    """The package front doors must declare an explicit __all__."""
    for module_name in (
        "repro",
        "repro.api",
        "repro.analysis",
        "repro.core",
        "repro.graphs",
        "repro.congest",
        "repro.hashing",
    ):
        module = importlib.import_module(module_name)
        assert getattr(module, "__all__", None), f"{module_name} lacks __all__"
