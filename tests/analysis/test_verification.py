"""Tests for output verification helpers."""

import pytest

from repro.analysis import (
    duplication_factor,
    local_listing_complete,
    nodes_reporting_foreign_triangles,
    recall_by_heaviness,
    require_sound,
    verify_result,
)
from repro.congest import AlgorithmCost, ExecutionMetrics
from repro.core import AlgorithmResult, NaiveTwoHopListing, TriangleOutput
from repro.errors import VerificationError
from repro.graphs import Graph, complete_graph, gnp_random_graph, union_of_cliques


def fabricate_result(per_node, rounds=1):
    return AlgorithmResult(
        algorithm="fabricated",
        model="CONGEST",
        output=TriangleOutput({k: frozenset(v) for k, v in per_node.items()}),
        cost=AlgorithmCost(rounds=rounds, messages=0, bits=0, max_bits_received=0),
        metrics=ExecutionMetrics(),
    )


class TestVerifyResult:
    def test_perfect_listing(self):
        graph = complete_graph(4)
        result = fabricate_result({0: {(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)}})
        report = verify_result(result, graph)
        assert report.sound and report.solves_listing and report.solves_finding
        assert report.recall == 1.0
        assert not report.missed and not report.spurious

    def test_partial_listing(self):
        graph = complete_graph(4)
        result = fabricate_result({0: {(0, 1, 2)}})
        report = verify_result(result, graph)
        assert report.sound
        assert report.solves_finding
        assert not report.solves_listing
        assert report.recall == pytest.approx(0.25)
        assert len(report.missed) == 3

    def test_spurious_triple_detected(self):
        graph = Graph(4, [(0, 1), (1, 2)])
        result = fabricate_result({0: {(0, 1, 2)}})
        report = verify_result(result, graph)
        assert not report.sound
        assert report.spurious == {(0, 1, 2)}
        with pytest.raises(VerificationError):
            require_sound(result, graph)

    def test_triangle_free_graph_with_empty_output(self):
        graph = Graph(4, [(0, 1), (1, 2)])
        report = verify_result(fabricate_result({0: set()}), graph)
        assert report.sound and report.solves_finding and report.solves_listing
        assert report.recall == 1.0

    def test_summary_text(self):
        graph = complete_graph(3)
        report = verify_result(fabricate_result({0: {(0, 1, 2)}}), graph)
        assert "recall=1.000" in report.summary()


class TestHeavinessBreakdown:
    def test_recall_split(self):
        # Union of a 6-clique (heavy triangles at threshold 3) and a
        # 3-clique (light triangle).  Report only the light one.
        graph = union_of_cliques([6, 3])
        import math

        epsilon = math.log(3) / math.log(9)
        result = fabricate_result({0: {(6, 7, 8)}})
        split = recall_by_heaviness(result, graph, epsilon)
        assert split["light"] == 1.0
        assert split["heavy"] == 0.0

    def test_recall_split_no_triangles(self):
        graph = Graph(4, [(0, 1)])
        split = recall_by_heaviness(fabricate_result({0: set()}), graph, 0.5)
        assert split == {"heavy": 1.0, "light": 1.0}


class TestLocalListingAndDuplication:
    def test_local_listing_complete_for_naive(self):
        graph = gnp_random_graph(18, 0.4, seed=1)
        result = NaiveTwoHopListing().run(graph, seed=1)
        assert local_listing_complete(result, graph)

    def test_local_listing_incomplete_when_node_misses_own_triangle(self):
        graph = complete_graph(3)
        result = fabricate_result({0: {(0, 1, 2)}, 1: set(), 2: set()})
        assert not local_listing_complete(result, graph)

    def test_foreign_triangle_reporting_detected(self):
        graph = complete_graph(4)
        result = fabricate_result({3: {(0, 1, 2)}})
        assert nodes_reporting_foreign_triangles(result, graph) == [3]

    def test_no_foreign_reporting_for_naive(self):
        graph = gnp_random_graph(15, 0.4, seed=2)
        result = NaiveTwoHopListing().run(graph, seed=2)
        assert nodes_reporting_foreign_triangles(result, graph) == []

    def test_duplication_factor(self):
        result = fabricate_result({0: {(0, 1, 2)}, 1: {(0, 1, 2)}, 2: {(1, 2, 3)}})
        assert duplication_factor(result) == pytest.approx(1.5)

    def test_duplication_factor_empty(self):
        assert duplication_factor(fabricate_result({0: set()})) == 0.0
