"""Tests for the table renderers."""

from repro.analysis import (
    fit_power_law,
    render_records_table,
    render_scaling_table,
    render_table,
    render_table1,
    run_single,
)
from repro.core import NaiveTwoHopListing
from repro.graphs import complete_graph


class TestRenderTable:
    def test_columns_aligned(self):
        text = render_table(["a", "bbbb"], [["x", "y"], ["longer", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_header_first(self):
        text = render_table(["col"], [["value"]])
        assert text.splitlines()[0].startswith("col")


class TestRenderTable1:
    def test_contains_all_references(self):
        text = render_table1(128)
        assert "Dolev et al. [8]" in text
        assert "This paper (Theorem 1)" in text
        assert "This paper (Theorem 2)" in text
        assert "This paper (Theorem 3)" in text
        assert "Censor-Hillel et al. [6]" in text

    def test_measured_values_inserted(self):
        text = render_table1(
            128,
            measured={"theorem2-listing-congest": 321},
            notes={"theorem2-listing-congest": "G(128, 0.5)"},
        )
        assert "321" in text
        assert "G(128, 0.5)" in text

    def test_unmeasured_rows_show_dash_and_note(self):
        text = render_table1(64)
        assert "—" in text
        assert "not implemented" in text

    def test_title_mentions_n(self):
        assert "n = 99" in render_table1(99)


class TestRenderScalingTable:
    def test_basic_rendering(self):
        sizes = [10, 20, 40]
        measured = [5.0, 9.0, 16.0]
        reference = [float(n) ** 0.75 for n in sizes]
        fit = fit_power_law([float(s) for s in sizes], measured)
        text = render_scaling_table(
            "scaling", sizes, measured, reference, fit=fit, expected_exponent=0.75
        )
        assert "scaling" in text
        assert "fitted exponent" in text
        assert "expected 0.750" in text

    def test_without_fit(self):
        text = render_scaling_table("t", [10], [1.0], [2.0])
        assert "fitted exponent" not in text


class TestRenderRecordsTable:
    def test_renders_algorithm_rows(self):
        record = run_single("t", NaiveTwoHopListing(), complete_graph(5), seed=0)
        text = render_records_table("results", [record])
        assert "naive-two-hop" in text
        assert "results" in text
