"""Tests for the sweep workload plane (shm transport, fallbacks, cache LRU)."""

import functools
import os
import pickle

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.analysis import PrebuiltGraphFactory, SWEEP_PLANE_ENV, SweepCell, SweepRunner
from repro.analysis import experiments as experiments_module
from repro.analysis.experiments import (
    _GRAPH_CACHE,
    _GRAPH_CACHE_MAX_ENTRIES,
    _cell_graph,
)
from repro.core import NaiveTwoHopListing, TriangleListing
from repro.errors import AnalysisError
from repro.graphs import gnp_random_graph, segment_exists, shm_available


def _naive_algorithm():
    return NaiveTwoHopListing()


def _listing_algorithm():
    return TriangleListing(repetitions=1, epsilon=0.5)


def _gnp_workload(num_nodes, seed):
    return gnp_random_graph(num_nodes, 0.4, seed=seed)


class _CrashingAlgorithm:
    """Kills its worker process outright: the BrokenProcessPool stand-in."""

    def run(self, graph, seed):
        os._exit(1)


def _grid_cells():
    return [
        SweepCell(
            experiment="plane",
            algorithm_factory=factory,
            graph_factory=functools.partial(_gnp_workload, 24),
            seed=seed,
        )
        for seed in (1, 2, 3)
        for factory in (_naive_algorithm, _listing_algorithm)
    ]


class _SegmentRecorder:
    """Wrap ``share_csr`` so tests can see which segments a sweep created."""

    def __init__(self):
        self.segments = []
        self._real = experiments_module.share_csr

    def __call__(self, csr, **kwargs):
        owner = self._real(csr, **kwargs)
        self.segments.append(owner.handle.segment)
        return owner


@pytest.fixture
def record_segments(monkeypatch):
    recorder = _SegmentRecorder()
    monkeypatch.setattr(experiments_module, "share_csr", recorder)
    return recorder


needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared memory is not usable on this platform"
)


class TestPlaneSelection:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(SWEEP_PLANE_ENV, raising=False)
        assert SweepRunner().plane == "auto"

    def test_env_knob_sets_default(self, monkeypatch):
        monkeypatch.setenv(SWEEP_PLANE_ENV, "pickle")
        assert SweepRunner().plane == "pickle"

    def test_explicit_plane_overrides_env(self, monkeypatch):
        monkeypatch.setenv(SWEEP_PLANE_ENV, "pickle")
        assert SweepRunner(plane="auto").plane == "auto"

    def test_invalid_plane_rejected(self):
        with pytest.raises(AnalysisError, match="plane"):
            SweepRunner(plane="carrier-pigeon")

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(SWEEP_PLANE_ENV, "bogus")
        with pytest.raises(AnalysisError, match=SWEEP_PLANE_ENV):
            SweepRunner()

    def test_shm_plane_unavailable_is_an_error(self, monkeypatch):
        monkeypatch.setattr(experiments_module, "shm_available", lambda: False)
        with SweepRunner(max_workers=2, plane="shm") as runner:
            with pytest.raises(AnalysisError, match="shared memory"):
                runner.run_cells(_grid_cells())

    def test_auto_plane_falls_back_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(experiments_module, "shm_available", lambda: False)
        with SweepRunner(max_workers=2, plane="auto") as runner:
            runner.run_cells(_grid_cells())
            assert runner.last_plane["plane"] == "pickle"
            assert runner.last_plane["workloads_shared"] == 0

    def test_auto_plane_falls_back_when_sharing_fails(self, monkeypatch):
        def broken_share(csr, **kwargs):
            raise RuntimeError("no segments today")

        monkeypatch.setattr(experiments_module, "share_csr", broken_share)
        with SweepRunner(max_workers=2, plane="auto") as runner:
            records = runner.run_cells(_grid_cells())
            assert len(records) == 6
            assert runner.last_plane["plane"] == "pickle"

    def test_shm_plane_sharing_failure_is_an_error(self, monkeypatch):
        def broken_share(csr, **kwargs):
            raise RuntimeError("no segments today")

        monkeypatch.setattr(experiments_module, "share_csr", broken_share)
        with SweepRunner(max_workers=2, plane="shm") as runner:
            with pytest.raises(AnalysisError, match="cannot share"):
                runner.run_cells(_grid_cells())


@needs_shm
class TestShmPlaneRecords:
    def test_all_planes_byte_identical(self):
        cells = _grid_cells()
        reference = [pickle.dumps(r, protocol=4) for r in SweepRunner().run_cells(cells)]
        for plane in ("pickle", "shm"):
            with SweepRunner(max_workers=2, plane=plane) as runner:
                records = runner.run_cells(cells)
                assert [pickle.dumps(r, protocol=4) for r in records] == reference
                assert runner.last_plane["plane"] == plane

    def test_last_plane_diagnostics(self):
        cells = _grid_cells()
        with SweepRunner(max_workers=2, plane="shm") as runner:
            runner.run_cells(cells)
            info = runner.last_plane
            assert info["cells"] == 6
            assert info["executed"] == 6
            assert info["cache_hits"] == 0
            # Three distinct workload seeds -> three shared segments; the
            # cells themselves ship handle-sized payloads.
            assert info["workloads_shared"] == 3
            assert 0 < info["pickled_bytes_per_cell"] < 4096

    def test_prebuilt_factory_groups_by_graph_identity(self):
        graph = _gnp_workload(24, 7)
        cells = [
            SweepCell(
                experiment="plane",
                algorithm_factory=factory,
                graph_factory=PrebuiltGraphFactory(graph),
                seed=7,
            )
            for factory in (_naive_algorithm, _listing_algorithm)
        ]
        serial = SweepRunner().run_cells(cells)
        with SweepRunner(max_workers=2, plane="shm") as runner:
            records = runner.run_cells(cells)
            assert runner.last_plane["workloads_shared"] == 1
            assert records == serial

    def test_segments_released_after_sweep(self, record_segments):
        with SweepRunner(max_workers=2, plane="shm") as runner:
            runner.run_cells(_grid_cells())
        assert len(record_segments.segments) == 3
        assert not any(segment_exists(s) for s in record_segments.segments)

    def test_segments_released_when_consumer_abandons_stream(self, record_segments):
        # A KeyboardInterrupt unwinds the for-loop consuming iter_cells;
        # generator close() runs the same finally block.
        with SweepRunner(max_workers=2, plane="shm") as runner:
            stream = runner.iter_cells(_grid_cells())
            next(stream)
            stream.close()
        assert record_segments.segments
        assert not any(segment_exists(s) for s in record_segments.segments)

    def test_segments_released_after_worker_crash(self, record_segments):
        cells = [
            SweepCell(
                experiment="crash",
                algorithm_factory=_CrashingAlgorithm,
                graph_factory=functools.partial(_gnp_workload, 16),
                seed=seed,
            )
            for seed in (1, 2)
        ]
        with SweepRunner(max_workers=2, plane="shm") as runner:
            with pytest.raises(BrokenProcessPool):
                runner.run_cells(cells)
            # The broken-pool recovery path still applies: the next sweep
            # on the same runner gets a fresh pool and completes.
            records = runner.run_cells(_grid_cells())
            assert len(records) == 6
        assert record_segments.segments
        assert not any(segment_exists(s) for s in record_segments.segments)


class TestWorkloadCacheLRU:
    @pytest.fixture(autouse=True)
    def _isolate_cache(self):
        saved = dict(_GRAPH_CACHE)
        _GRAPH_CACHE.clear()
        yield
        _GRAPH_CACHE.clear()
        _GRAPH_CACHE.update(saved)

    def _cell(self, num_nodes, seed):
        return SweepCell(
            experiment="lru",
            algorithm_factory=_naive_algorithm,
            graph_factory=functools.partial(_gnp_workload, num_nodes),
            seed=seed,
        )

    def test_cache_is_bounded(self):
        for seed in range(_GRAPH_CACHE_MAX_ENTRIES + 4):
            _cell_graph(self._cell(10, seed))
        assert len(_GRAPH_CACHE) == _GRAPH_CACHE_MAX_ENTRIES

    def test_eviction_is_least_recently_used(self):
        cells = [self._cell(10, seed) for seed in range(_GRAPH_CACHE_MAX_ENTRIES)]
        graphs = [_cell_graph(cell) for cell in cells]
        # Touch cell 0 so it is the most recently used, then overflow by one.
        assert _cell_graph(cells[0]) is graphs[0]
        _cell_graph(self._cell(10, 999))
        assert _cell_graph(cells[0]) is graphs[0]  # survived (was recent)
        assert _cell_graph(cells[1]) is not graphs[1]  # evicted (was oldest)

    def test_repeated_cells_share_one_graph(self):
        first = _cell_graph(self._cell(12, 5))
        second = _cell_graph(self._cell(12, 5))
        assert first is second
        assert len(_GRAPH_CACHE) == 1
