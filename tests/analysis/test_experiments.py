"""Tests for the experiment harness."""

import pytest

from repro.analysis import (
    all_sound,
    describe_workload,
    mean_recall,
    mean_rounds_by_size,
    run_repeated,
    run_single,
    run_size_sweep,
)
from repro.core import NaiveTwoHopListing, TriangleListing
from repro.errors import AnalysisError
from repro.graphs import complete_graph, gnp_random_graph


class TestRunSingle:
    def test_record_fields(self):
        graph = gnp_random_graph(15, 0.4, seed=1)
        record = run_single("unit", NaiveTwoHopListing(), graph, seed=1, extra={"p": 0.4})
        assert record.experiment == "unit"
        assert record.algorithm == "naive-two-hop"
        assert record.num_nodes == 15
        assert record.rounds == graph.max_degree()
        assert record.sound
        assert record.solves_listing
        assert record.extra == {"p": 0.4}

    def test_as_dict_flattens_extra(self):
        graph = complete_graph(5)
        record = run_single("unit", NaiveTwoHopListing(), graph, seed=0, extra={"tag": 1})
        flattened = record.as_dict()
        assert flattened["tag"] == 1
        assert flattened["num_triangles"] == 10


class TestRunRepeated:
    def test_records_per_seed(self):
        records = run_repeated(
            "repeat",
            lambda: NaiveTwoHopListing(),
            lambda seed: gnp_random_graph(12, 0.4, seed=seed),
            seeds=[1, 2, 3],
        )
        assert len(records) == 3
        assert {record.seed for record in records} == {1, 2, 3}
        assert all_sound(records)

    def test_needs_seeds(self):
        with pytest.raises(AnalysisError):
            run_repeated("x", lambda: NaiveTwoHopListing(), lambda s: complete_graph(4), seeds=[])


class TestRunSizeSweep:
    def test_sweep_sizes(self):
        records = run_size_sweep(
            "sweep",
            lambda: NaiveTwoHopListing(),
            lambda n, seed: gnp_random_graph(n, 0.4, seed=seed),
            sizes=[10, 14],
            seeds_per_size=2,
        )
        assert len(records) == 4
        assert {record.num_nodes for record in records} == {10, 14}
        means = mean_rounds_by_size(records)
        assert set(means) == {10, 14}

    def test_validation(self):
        with pytest.raises(AnalysisError):
            run_size_sweep("x", lambda: NaiveTwoHopListing(), lambda n, s: complete_graph(n), sizes=[])
        with pytest.raises(AnalysisError):
            run_size_sweep(
                "x",
                lambda: NaiveTwoHopListing(),
                lambda n, s: complete_graph(n),
                sizes=[4],
                seeds_per_size=0,
            )


class TestAggregation:
    def test_mean_recall(self):
        records = run_repeated(
            "agg",
            lambda: TriangleListing(repetitions=1, epsilon=0.5),
            lambda seed: gnp_random_graph(14, 0.4, seed=seed),
            seeds=[1, 2],
        )
        assert 0.0 <= mean_recall(records) <= 1.0

    def test_mean_recall_empty(self):
        with pytest.raises(AnalysisError):
            mean_recall([])

    def test_describe_workload(self):
        description = describe_workload(complete_graph(5))
        assert description["num_nodes"] == 5
        assert description["num_edges"] == 10
        assert description["num_triangles"] == 10
        assert description["max_degree"] == 4
        assert description["density"] == pytest.approx(1.0)
