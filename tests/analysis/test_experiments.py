"""Tests for the experiment harness."""

import functools
import pickle

import pytest

from repro.analysis import (
    ExperimentRecord,
    SweepCell,
    SweepRunner,
    all_sound,
    describe_workload,
    mean_recall,
    mean_rounds_by_size,
    run_repeated,
    run_single,
    run_size_sweep,
)
from repro.core import NaiveTwoHopListing, TriangleListing
from repro.errors import AnalysisError
from repro.graphs import complete_graph, gnp_random_graph


# Sweep factories must live at module level: SweepRunner ships cells to
# worker processes, so they have to pickle.
def _naive_algorithm():
    return NaiveTwoHopListing()


def _listing_algorithm():
    return TriangleListing(repetitions=1, epsilon=0.5)


def _gnp_workload(num_nodes, seed):
    return gnp_random_graph(num_nodes, 0.4, seed=seed)


class TestRunSingle:
    def test_record_fields(self):
        graph = gnp_random_graph(15, 0.4, seed=1)
        record = run_single("unit", NaiveTwoHopListing(), graph, seed=1, extra={"p": 0.4})
        assert record.experiment == "unit"
        assert record.algorithm == "naive-two-hop"
        assert record.num_nodes == 15
        assert record.rounds == graph.max_degree()
        assert record.sound
        assert record.solves_listing
        assert record.extra == {"p": 0.4}

    def test_as_dict_flattens_extra(self):
        graph = complete_graph(5)
        record = run_single("unit", NaiveTwoHopListing(), graph, seed=0, extra={"tag": 1})
        flattened = record.as_dict()
        assert flattened["tag"] == 1
        assert flattened["num_triangles"] == 10


class TestRunRepeated:
    def test_records_per_seed(self):
        records = run_repeated(
            "repeat",
            lambda: NaiveTwoHopListing(),
            lambda seed: gnp_random_graph(12, 0.4, seed=seed),
            seeds=[1, 2, 3],
        )
        assert len(records) == 3
        assert {record.seed for record in records} == {1, 2, 3}
        assert all_sound(records)

    def test_needs_seeds(self):
        with pytest.raises(AnalysisError):
            run_repeated("x", lambda: NaiveTwoHopListing(), lambda s: complete_graph(4), seeds=[])


class TestRunSizeSweep:
    def test_sweep_sizes(self):
        records = run_size_sweep(
            "sweep",
            lambda: NaiveTwoHopListing(),
            lambda n, seed: gnp_random_graph(n, 0.4, seed=seed),
            sizes=[10, 14],
            seeds_per_size=2,
        )
        assert len(records) == 4
        assert {record.num_nodes for record in records} == {10, 14}
        means = mean_rounds_by_size(records)
        assert set(means) == {10, 14}

    def test_validation(self):
        with pytest.raises(AnalysisError):
            run_size_sweep("x", lambda: NaiveTwoHopListing(), lambda n, s: complete_graph(n), sizes=[])
        with pytest.raises(AnalysisError):
            run_size_sweep(
                "x",
                lambda: NaiveTwoHopListing(),
                lambda n, s: complete_graph(n),
                sizes=[4],
                seeds_per_size=0,
            )


class TestSweepRunner:
    def test_parallel_records_byte_identical_to_serial(self):
        kwargs = dict(
            experiment="sweep",
            algorithm_factory=_listing_algorithm,
            graph_factory=_gnp_workload,
            sizes=[12, 16, 20],
            seeds_per_size=2,
            base_seed=7,
        )
        serial = SweepRunner().run_size_sweep(**kwargs)
        parallel = SweepRunner(max_workers=2).run_size_sweep(**kwargs)
        assert serial == parallel
        for left, right in zip(serial, parallel):
            assert pickle.dumps(left) == pickle.dumps(right)

    def test_record_order_follows_cell_order(self):
        cells = [
            SweepCell(
                experiment="order",
                algorithm_factory=_naive_algorithm,
                graph_factory=functools.partial(_gnp_workload, num_nodes),
                seed=seed,
            )
            for num_nodes, seed in [(18, 3), (10, 1), (14, 2)]
        ]
        records = SweepRunner(max_workers=2).run_cells(cells)
        assert [record.num_nodes for record in records] == [18, 10, 14]
        assert [record.seed for record in records] == [3, 1, 2]

    def test_run_repeated_matches_module_helper(self):
        seeds = [1, 2, 3]
        expected = run_repeated(
            "rep",
            _naive_algorithm,
            functools.partial(_gnp_workload, 12),
            seeds=seeds,
        )
        parallel = SweepRunner(max_workers=2).run_repeated(
            "rep",
            _naive_algorithm,
            functools.partial(_gnp_workload, 12),
            seeds=seeds,
        )
        assert parallel == expected

    def test_spawn_seeds_deterministic_and_independent(self):
        first = SweepRunner.spawn_seeds(42, 6)
        second = SweepRunner.spawn_seeds(42, 6)
        assert first == second
        assert len(set(first)) == 6
        assert SweepRunner.spawn_seeds(43, 6) != first
        assert SweepRunner.spawn_seeds(42, 0) == []
        assert all(seed >= 0 for seed in first)

    def test_aggregation_api_unchanged_on_sweep_records(self):
        records = SweepRunner(max_workers=2).run_size_sweep(
            "agg",
            _naive_algorithm,
            _gnp_workload,
            sizes=[10, 14],
            seeds_per_size=2,
        )
        assert len(records) == 4
        assert set(mean_rounds_by_size(records)) == {10, 14}
        assert all_sound(records)
        assert 0.0 <= mean_recall(records) <= 1.0

    def test_serial_when_single_worker(self):
        runner = SweepRunner(max_workers=1)
        assert not runner.parallel
        records = runner.run_repeated(
            "serial", _naive_algorithm, functools.partial(_gnp_workload, 10), seeds=[5]
        )
        assert len(records) == 1 and records[0].seed == 5

    def test_validation(self):
        with pytest.raises(AnalysisError):
            SweepRunner(max_workers=0)
        with pytest.raises(AnalysisError):
            SweepRunner(chunk_size=0)
        with pytest.raises(AnalysisError):
            SweepRunner().run_repeated("x", _naive_algorithm, _gnp_workload, seeds=[])
        with pytest.raises(AnalysisError):
            SweepRunner().run_size_sweep("x", _naive_algorithm, _gnp_workload, sizes=[])
        with pytest.raises(AnalysisError):
            SweepRunner.spawn_seeds(1, -1)


class TestAggregation:
    def test_mean_recall(self):
        records = run_repeated(
            "agg",
            lambda: TriangleListing(repetitions=1, epsilon=0.5),
            lambda seed: gnp_random_graph(14, 0.4, seed=seed),
            seeds=[1, 2],
        )
        assert 0.0 <= mean_recall(records) <= 1.0

    def test_mean_recall_empty(self):
        with pytest.raises(AnalysisError):
            mean_recall([])

    def test_describe_workload(self):
        description = describe_workload(complete_graph(5))
        assert description["num_nodes"] == 5
        assert description["num_edges"] == 10
        assert description["num_triangles"] == 10
        assert description["max_degree"] == 4
        assert description["density"] == pytest.approx(1.0)


class _CountingWorkload:
    """Picklable graph factory that counts in-process invocations."""

    calls = 0

    def __init__(self, num_nodes):
        self.num_nodes = num_nodes

    def __call__(self, seed):
        type(self).calls += 1
        return gnp_random_graph(self.num_nodes, 0.4, seed=seed)

    def __eq__(self, other):
        return isinstance(other, _CountingWorkload) and other.num_nodes == self.num_nodes

    def __reduce__(self):
        return (_CountingWorkload, (self.num_nodes,))


class TestPersistentRunner:
    def test_pool_persists_across_sweeps_and_closes(self):
        runner = SweepRunner(max_workers=2)
        assert runner._pool is None
        first = runner.run_repeated(
            "persist", _naive_algorithm, functools.partial(_gnp_workload, 12), [1, 2]
        )
        pool = runner._pool
        assert pool is not None
        second = runner.run_repeated(
            "persist", _naive_algorithm, functools.partial(_gnp_workload, 12), [1, 2]
        )
        assert runner._pool is pool
        assert first == second
        runner.close()
        assert runner._pool is None
        # The runner stays usable after close.
        third = runner.run_repeated(
            "persist", _naive_algorithm, functools.partial(_gnp_workload, 12), [1, 2]
        )
        assert third == first
        runner.close()

    def test_context_manager_closes_pool(self):
        with SweepRunner(max_workers=2) as runner:
            runner.run_repeated(
                "ctx", _naive_algorithm, functools.partial(_gnp_workload, 10), [1, 2]
            )
            assert runner._pool is not None
        assert runner._pool is None

    def test_worker_graph_cache_reuses_workloads(self):
        _CountingWorkload.calls = 0
        factory = _CountingWorkload(12)
        runner = SweepRunner()  # serial: cache observable in-process
        first = runner.run_repeated("cache", _naive_algorithm, factory, [5, 6])
        assert _CountingWorkload.calls == 2
        second = runner.run_repeated("cache", _naive_algorithm, factory, [5, 6])
        # Same (factory, seed) cells: graphs come from the cache.
        assert _CountingWorkload.calls == 2
        assert first == second

    def test_run_grid_shares_workloads_across_algorithms(self):
        _CountingWorkload.calls = 0
        factory = _CountingWorkload(14)
        runner = SweepRunner()
        grid = runner.run_grid(
            "grid",
            {"naive": _naive_algorithm, "listing": _listing_algorithm},
            factory,
            seeds=[3, 4],
        )
        # Two algorithms x two seeds, but each workload built once per seed
        # (the grid is workload-major, so cached graphs are shared).
        assert _CountingWorkload.calls == 2
        assert sorted(grid) == ["listing", "naive"]
        expected = SweepRunner().run_repeated("grid", _naive_algorithm, factory, [3, 4])
        assert grid["naive"] == expected

    def test_run_grid_parallel_matches_serial(self):
        factory = functools.partial(_gnp_workload, 12)
        serial = SweepRunner().run_grid(
            "grid", {"naive": _naive_algorithm}, factory, seeds=[1, 2]
        )
        with SweepRunner(max_workers=2) as runner:
            parallel = runner.run_grid(
                "grid", {"naive": _naive_algorithm}, factory, seeds=[1, 2]
            )
        assert parallel == serial

    def test_run_grid_validation(self):
        runner = SweepRunner()
        with pytest.raises(AnalysisError):
            runner.run_grid("grid", {"a": _naive_algorithm}, _CountingWorkload(8), [])
        with pytest.raises(AnalysisError):
            runner.run_grid("grid", {}, _CountingWorkload(8), [1])


class TestPicklabilityValidation:
    """Unpicklable cells fail eagerly with a named cell, not a pool traceback."""

    def test_parallel_lambda_cell_raises_analysis_error(self):
        cells = [
            SweepCell(
                experiment="bad",
                algorithm_factory=_naive_algorithm,
                graph_factory=functools.partial(_gnp_workload, 10),
                seed=1,
            ),
            SweepCell(
                experiment="bad",
                algorithm_factory=lambda: NaiveTwoHopListing(),  # unpicklable
                graph_factory=functools.partial(_gnp_workload, 10),
                seed=2,
            ),
        ]
        with SweepRunner(max_workers=2) as runner:
            with pytest.raises(AnalysisError, match=r"cell 1 .*seed=2.* not picklable"):
                runner.run_cells(cells)

    def test_serial_lambda_cells_still_run(self):
        cells = [
            SweepCell(
                experiment="ok",
                algorithm_factory=lambda: NaiveTwoHopListing(),
                graph_factory=lambda seed: complete_graph(5),
                seed=1,
            )
        ]
        records = SweepRunner().run_cells(cells)
        assert len(records) == 1 and records[0].sound


class TestIterCells:
    def test_streaming_order_matches_run_cells(self):
        cells = [
            SweepCell(
                experiment="stream",
                algorithm_factory=_naive_algorithm,
                graph_factory=functools.partial(_gnp_workload, 10),
                seed=seed,
            )
            for seed in (1, 2, 3)
        ]
        runner = SweepRunner()
        streamed = list(runner.iter_cells(cells))
        assert streamed == runner.run_cells(cells)
        assert [record.seed for record in streamed] == [1, 2, 3]

    def test_parallel_streaming_matches_serial(self):
        cells = [
            SweepCell(
                experiment="stream",
                algorithm_factory=_naive_algorithm,
                graph_factory=functools.partial(_gnp_workload, 10),
                seed=seed,
            )
            for seed in (1, 2, 3)
        ]
        serial = SweepRunner().run_cells(cells)
        with SweepRunner(max_workers=2) as runner:
            assert list(runner.iter_cells(cells)) == serial


class TestRecordSerialization:
    def test_to_dict_round_trips(self):
        record = run_single(
            "serde",
            _naive_algorithm(),
            _gnp_workload(10, 3),
            seed=3,
            extra={"note": "x"},
        )
        clone = ExperimentRecord.from_dict(record.to_dict())
        assert clone == record

    def test_as_dict_still_flattens_extra(self):
        record = run_single(
            "serde", _naive_algorithm(), _gnp_workload(10, 3), seed=3,
            extra={"note": "x"},
        )
        flat = record.as_dict()
        assert flat["note"] == "x"
        assert "extra" not in flat
        nested = record.to_dict()
        assert nested["extra"] == {"note": "x"}

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        record = run_single("serde", _naive_algorithm(), _gnp_workload(10, 3), seed=3)
        payload = record.to_dict()
        payload["bogus"] = 1
        with pytest.raises(AnalysisError, match="unknown"):
            ExperimentRecord.from_dict(payload)
        del payload["bogus"]
        del payload["rounds"]
        with pytest.raises(AnalysisError, match="missing"):
            ExperimentRecord.from_dict(payload)
