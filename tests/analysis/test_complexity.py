"""Tests for the Table-1 closed-form complexity predictions."""

import pytest

from repro.analysis import (
    component_bounds,
    dolev_listing_clique,
    local_listing_lower,
    naive_two_hop_upper,
    predicted_round_complexities,
    table1_row,
    table1_rows,
    this_paper_finding_congest,
    this_paper_listing_congest,
    this_paper_listing_lower,
)


class TestRows:
    def test_all_paper_rows_present(self):
        keys = {row.key for row in table1_rows()}
        assert {
            "dolev-listing-clique",
            "censor-hillel-finding-clique",
            "theorem1-finding-congest",
            "theorem2-listing-congest",
            "drucker-finding-broadcast-lower",
            "pandurangan-listing-clique-lower",
            "theorem3-listing-lower",
            "naive-two-hop",
        } <= keys

    def test_row_lookup(self):
        row = table1_row("theorem1-finding-congest")
        assert row.problem == "finding"
        assert row.model == "CONGEST"
        assert row.implemented

    def test_unknown_row_raises(self):
        with pytest.raises(KeyError):
            table1_row("no-such-row")

    def test_implemented_flags(self):
        by_key = {row.key: row for row in table1_rows()}
        assert not by_key["censor-hillel-finding-clique"].implemented
        assert not by_key["drucker-finding-broadcast-lower"].implemented
        assert by_key["theorem2-listing-congest"].implemented

    def test_predicted_round_complexities_mapping(self):
        predictions = predicted_round_complexities(256)
        assert set(predictions) == {row.key for row in table1_rows()}
        assert all(value > 0 for value in predictions.values())


class TestFormulas:
    def test_exact_values_at_powers_of_two(self):
        # n = 4096: log2 n = 12.
        assert dolev_listing_clique(4096) == pytest.approx(16 * 12 ** (2 / 3))
        assert this_paper_finding_congest(4096) == pytest.approx(256 * 12 ** (2 / 3))
        assert this_paper_listing_congest(4096) == pytest.approx(512 * 12)
        assert this_paper_listing_lower(4096) == pytest.approx(16 / 12)
        assert local_listing_lower(4096) == pytest.approx(4096 / 12)

    def test_naive_uses_max_degree_when_given(self):
        assert naive_two_hop_upper(100, max_degree=12) == 12.0
        assert naive_two_hop_upper(100) == 100.0

    def test_table1_orderings_hold_asymptotically(self):
        # The qualitative story of Table 1 at a comfortably large n:
        n = 10**6
        values = predicted_round_complexities(n)
        # The clique listing algorithm beats both CONGEST algorithms.
        assert values["dolev-listing-clique"] < values["theorem1-finding-congest"]
        assert values["dolev-listing-clique"] < values["theorem2-listing-congest"]
        # Finding is cheaper than listing in CONGEST.
        assert values["theorem1-finding-congest"] < values["theorem2-listing-congest"]
        # Both new upper bounds are sublinear, the naive baseline is not.
        assert values["theorem1-finding-congest"] < values["naive-two-hop"]
        assert values["theorem2-listing-congest"] < values["naive-two-hop"]
        # The Theorem-3 lower bound sits below the Dolev upper bound (tight
        # up to polylog factors) and above the older Pandurangan et al. bound.
        assert values["theorem3-listing-lower"] < values["dolev-listing-clique"]
        assert values["theorem3-listing-lower"] > values["pandurangan-listing-clique-lower"]

    def test_theorem3_improves_on_pandurangan_for_all_sizes(self):
        for n in (10**3, 10**4, 10**6, 10**9):
            assert this_paper_listing_lower(n) > table1_row(
                "pandurangan-listing-clique-lower"
            ).predicted(n)


class TestComponentBounds:
    def test_component_bounds_shape(self):
        bounds = component_bounds(4096, 0.5)
        assert bounds["A1"] == pytest.approx(4096 ** 0.5)
        assert bounds["A2"] == pytest.approx(4096 ** 0.75)
        assert bounds["A3"] == pytest.approx(4096 ** 0.5 + 4096 ** 0.75 * 12)

    def test_epsilon_tradeoff_direction(self):
        # Raising epsilon makes A1/A2 cheaper and the A3 heavy term costlier.
        low = component_bounds(10**6, 0.2)
        high = component_bounds(10**6, 0.8)
        assert high["A1"] < low["A1"]
        assert high["A2"] < low["A2"]
        assert high["A3"] > low["A3"]
