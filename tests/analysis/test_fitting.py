"""Tests for power-law fitting helpers."""

import math

import pytest

from repro.analysis import (
    fit_exponent_with_log_correction,
    fit_power_law,
    relative_shape_error,
)
from repro.errors import AnalysisError


class TestFitPowerLaw:
    def test_exact_power_law_recovered(self):
        xs = [10, 20, 40, 80, 160]
        ys = [3.0 * x**0.75 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.75, abs=1e-9)
        assert fit.prefactor == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_linear_data(self):
        xs = [1, 2, 3, 4]
        ys = [2.0 * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.0)

    def test_noisy_data_reasonable_fit(self):
        xs = [16, 32, 64, 128, 256]
        ys = [x**0.5 * factor for x, factor in zip(xs, (1.1, 0.9, 1.05, 0.95, 1.0))]
        fit = fit_power_law(xs, ys)
        assert 0.4 < fit.exponent < 0.6

    def test_predict(self):
        fit = fit_power_law([2, 4, 8], [4, 16, 64])
        assert fit.predict(16) == pytest.approx(256, rel=1e-6)

    def test_constant_data_r_squared_one(self):
        fit = fit_power_law([1, 2, 4], [5.0, 5.0, 5.0])
        assert fit.exponent == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_validation_errors(self):
        with pytest.raises(AnalysisError):
            fit_power_law([1, 2], [1])
        with pytest.raises(AnalysisError):
            fit_power_law([1], [1])
        with pytest.raises(AnalysisError):
            fit_power_law([0, 1], [1, 2])
        with pytest.raises(AnalysisError):
            fit_power_law([1, 2], [1, -2])


class TestLogCorrection:
    def test_removes_log_factor(self):
        sizes = [64, 128, 256, 512, 1024]
        values = [x ** (2 / 3) * math.log2(x) ** (2 / 3) for x in sizes]
        raw = fit_power_law([float(s) for s in sizes], values)
        corrected = fit_exponent_with_log_correction(sizes, values, log_exponent=2 / 3)
        assert abs(corrected.exponent - 2 / 3) < abs(raw.exponent - 2 / 3)
        assert corrected.exponent == pytest.approx(2 / 3, abs=1e-6)

    def test_zero_correction_is_plain_fit(self):
        sizes = [10, 20, 40]
        values = [x**0.5 for x in sizes]
        assert fit_exponent_with_log_correction(sizes, values).exponent == pytest.approx(0.5)

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            fit_exponent_with_log_correction([1, 2], [1.0])


class TestShapeError:
    def test_perfect_shape_match(self):
        sizes = [10, 20, 40]
        reference = lambda n: n**0.75
        measured = [5.0 * reference(n) for n in sizes]
        assert relative_shape_error(sizes, measured, reference) == pytest.approx(0.0)

    def test_shape_mismatch_detected(self):
        sizes = [10, 100, 1000]
        reference = lambda n: float(n)
        measured = [n**0.5 for n in sizes]
        assert relative_shape_error(sizes, measured, reference) > 0.5

    def test_validation(self):
        with pytest.raises(AnalysisError):
            relative_shape_error([], [], lambda n: 1.0)
        with pytest.raises(AnalysisError):
            relative_shape_error([1, 2], [1.0], lambda n: 1.0)
        with pytest.raises(AnalysisError):
            relative_shape_error([1], [1.0], lambda n: 0.0)
