"""Content-addressed result cache: hashing, hits, and sweep integration."""

from __future__ import annotations

import errno
import filecmp
import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import SweepRunner
from repro.analysis import experiments as experiments_module
from repro.api import (
    AlgorithmSpec,
    ResultCache,
    RunSpec,
    SweepSpec,
    WorkloadSpec,
    main,
    run_sweep,
)
from repro.errors import AnalysisError, StoreError


def _run_spec(seed=7, experiment="golden", algorithm=None, workload=None):
    return RunSpec(
        algorithm=algorithm
        or AlgorithmSpec("naive-two-hop", {}),
        workload=workload
        or WorkloadSpec("gnp", {"num_nodes": 24, "edge_probability": 0.4}),
        seed=seed,
        experiment=experiment,
    )


def _sweep_spec():
    return SweepSpec(
        experiment="cache-sweep",
        algorithms=(
            AlgorithmSpec("naive-two-hop", {}),
            AlgorithmSpec("theorem2-listing", {"repetitions": 1, "epsilon": 0.5}),
        ),
        workload=WorkloadSpec("gnp", {"num_nodes": 24, "edge_probability": 0.4}),
        seeds=(1, 2),
    )


class TestContentHash:
    def test_golden_hash_is_stable(self):
        # Pinned across sessions/machines: the canonical-JSON sha256 of the
        # spec document.  If this changes, every existing cache is orphaned
        # — bump deliberately, never accidentally.
        assert _run_spec().content_hash() == (
            "22a63f4e338c27252a9a03b867218dd058a9ea6cc36490010c14803260879053"
        )
        assert _run_spec(
            algorithm=AlgorithmSpec(
                "theorem2-listing", {"repetitions": 1, "epsilon": 0.5}
            )
        ).content_hash() == (
            "e169eadd0d2e55c8c4579d0c73fffaf1abbdadc77bcf5adeb499a9a8dce2617e"
        )

    def test_hash_matches_json_round_trip(self):
        spec = _run_spec()
        clone = RunSpec.from_json(spec.to_json())
        assert clone.content_hash() == spec.content_hash()

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        experiment=st.text(min_size=1, max_size=16),
        num_nodes=st.integers(min_value=2, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_field_change_changes_hash(self, seed, experiment, num_nodes):
        base = _run_spec()
        varied = RunSpec(
            algorithm=base.algorithm,
            workload=WorkloadSpec(
                "gnp", {"num_nodes": num_nodes, "edge_probability": 0.4}
            ),
            seed=seed,
            experiment=experiment,
        )
        if varied.to_dict() == base.to_dict():
            assert varied.content_hash() == base.content_hash()
        else:
            assert varied.content_hash() != base.content_hash()


class TestResultCache:
    def test_miss_then_hit_round_trips_record(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _run_spec()
        assert cache.get(spec) is None
        record = spec.run()
        assert cache.put(spec, record)
        assert cache.get(spec) == record
        assert (cache.hits, cache.misses, cache.writes) == (1, 1, 1)

    def test_put_is_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _run_spec()
        record = spec.run()
        assert cache.put(spec, record)
        assert not cache.put(spec, record)
        assert cache.writes == 1

    def test_entry_is_self_describing_canonical_json(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _run_spec()
        cache.put(spec, spec.run())
        digest = spec.content_hash()
        path = tmp_path / "cache" / digest[:2] / f"{digest}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["kind"] == "cached-record"
        assert payload["hash"] == digest
        assert payload["run"] == spec.to_dict()

    def test_mismatched_entry_is_an_error_not_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _run_spec()
        cache.put(spec, spec.run())
        digest = spec.content_hash()
        path = tmp_path / "cache" / digest[:2] / f"{digest}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["run"]["seed"] = 999  # hand-edit the stored identity
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(AnalysisError, match="does not match"):
            cache.get(spec)

    def test_foreign_file_is_an_error(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _run_spec()
        digest = spec.content_hash()
        path = tmp_path / "cache" / digest[:2] / f"{digest}.json"
        path.parent.mkdir(parents=True)
        path.write_text('{"kind": "something-else"}', encoding="utf-8")
        with pytest.raises(AnalysisError, match="not a result-cache entry"):
            cache.get(spec)

    def test_stats_entries_evict_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = [_run_spec(seed=seed) for seed in (1, 2, 3)]
        for spec in specs:
            cache.put(spec, spec.run())
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        listed = cache.entries()
        assert {entry["seed"] for entry in listed} == {1, 2, 3}
        assert all(entry["algorithm"] == "naive-two-hop" for entry in listed)
        assert cache.evict(specs[0].content_hash())
        assert not cache.evict(specs[0].content_hash())
        assert cache.stats()["entries"] == 2
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0

    def test_evict_rejects_non_hashes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(AnalysisError, match="sha256"):
            cache.evict("../../etc/passwd")


class TestCacheFullDisk:
    """A full disk mid-put must leave the cache clean and recoverable."""

    def test_enospc_on_replace_raises_and_leaves_no_tmp_litter(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path / "cache")
        spec = _run_spec()
        record = spec.run()

        def full_disk(src, dst):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(os, "replace", full_disk)
        with pytest.raises(StoreError, match="cannot write cache entry"):
            cache.put(spec, record)
        monkeypatch.undo()

        # No .tmp litter, no truncated entry under the hash.
        litter = [
            path
            for path in (tmp_path / "cache").rglob("*")
            if path.is_file()
        ]
        assert litter == []
        assert cache.writes == 0
        assert cache.get(spec) is None  # a clean miss, not corruption

        # Once space frees up the same put succeeds and round-trips.
        assert cache.put(spec, record)
        assert cache.get(spec) == record

    def test_enospc_while_writing_the_tmp_file(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        spec = _run_spec()
        record = spec.run()
        real_write_text = Path.write_text

        def full_disk(self, *args, **kwargs):
            if self.name.endswith(".tmp"):
                raise OSError(errno.ENOSPC, "No space left on device")
            return real_write_text(self, *args, **kwargs)

        monkeypatch.setattr(Path, "write_text", full_disk)
        with pytest.raises(StoreError, match="No space left"):
            cache.put(spec, record)
        monkeypatch.undo()
        assert list((tmp_path / "cache").rglob("*.tmp")) == []
        assert cache.put(spec, record)
        assert cache.get(spec) == record


class TestSweepCacheIntegration:
    def test_warm_cache_sweep_executes_nothing(self, tmp_path, monkeypatch):
        spec = _sweep_spec()
        cache = ResultCache(tmp_path / "cache")
        run_sweep(spec, tmp_path / "first.jsonl", cache=cache)
        assert cache.writes == len(spec.cells())

        def forbidden(cell):
            raise AssertionError("a warm-cache sweep must execute nothing")

        monkeypatch.setattr(experiments_module, "_execute_cell", forbidden)
        with SweepRunner(max_workers=2) as runner:
            stored = run_sweep(
                spec, tmp_path / "second.jsonl", runner=runner, cache=cache
            )
            assert runner.last_plane["executed"] == 0
            assert runner.last_plane["cache_hits"] == len(spec.cells())
        assert len(stored.entries) == len(spec.cells())

    def test_cache_hits_reproduce_store_byte_for_byte(self, tmp_path):
        spec = _sweep_spec()
        cache = ResultCache(tmp_path / "cache")
        run_sweep(spec, tmp_path / "first.jsonl", cache=cache)
        run_sweep(spec, tmp_path / "second.jsonl", cache=cache)
        assert filecmp.cmp(
            tmp_path / "first.jsonl", tmp_path / "second.jsonl", shallow=False
        )

    def test_resume_over_warm_cache_does_not_double_write(self, tmp_path):
        spec = _sweep_spec()
        cache = ResultCache(tmp_path / "cache")
        path = tmp_path / "partial.jsonl"
        run_sweep(spec, path, cache=cache, max_cells=2)
        writes_after_partial = cache.writes
        assert writes_after_partial == 2
        run_sweep(spec, path, cache=cache, resume=True)
        # The two resumed-over cells came from the store, not the runner:
        # they must not be re-put (nor re-executed) against the cache.
        assert cache.writes == writes_after_partial + (len(spec.cells()) - 2)
        assert cache.hits == 0

    def test_cache_and_no_cache_sweeps_agree(self, tmp_path):
        spec = _sweep_spec()
        cache = ResultCache(tmp_path / "cache")
        cached = run_sweep(spec, tmp_path / "cached.jsonl", cache=cache)
        plain = run_sweep(spec, tmp_path / "plain.jsonl")
        assert cached.entries == plain.entries


class TestCliCache:
    def _write_run_spec(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(_run_spec().to_json(), encoding="utf-8")
        return str(path)

    def test_run_cache_hit_round_trip(self, tmp_path, capsys):
        spec_path = self._write_run_spec(tmp_path)
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "--spec", spec_path, "--cache", cache_dir, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cache"] == {
            "hit": False,
            "hash": _run_spec().content_hash(),
        }
        assert main(["run", "--spec", spec_path, "--cache", cache_dir, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cache"]["hit"] is True
        assert second["record"] == first["record"]

    def test_cache_verb_reports_and_evicts(self, tmp_path, capsys):
        spec_path = self._write_run_spec(tmp_path)
        cache_dir = str(tmp_path / "cache")
        main(["run", "--spec", spec_path, "--cache", cache_dir, "--json"])
        capsys.readouterr()
        assert main(["cache", cache_dir, "--entries", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["entry_list"][0]["hash"] == _run_spec().content_hash()
        assert (
            main(["cache", cache_dir, "--evict", _run_spec().content_hash(), "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 0
        assert payload["evicted"] == [_run_spec().content_hash()]

    def test_sweep_cache_flag(self, tmp_path, capsys):
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(_sweep_spec().to_json(), encoding="utf-8")
        cache_dir = str(tmp_path / "cache")
        out_one = str(tmp_path / "one.jsonl")
        out_two = str(tmp_path / "two.jsonl")
        argv = ["sweep", str(spec_path), "--cache", cache_dir, "--json"]
        assert main(argv + ["--out", out_one]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cache"]["writes"] == 4
        assert first["plane"]["cache_hits"] == 0
        assert main(argv + ["--out", out_two]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cache"]["hits"] == 4
        assert second["plane"]["executed"] == 0
        assert second["records"] == first["records"]
