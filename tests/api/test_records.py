"""Record serialization: lossless to_dict/from_dict and canonical JSON."""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.api import canonical_json
from repro.analysis import ExperimentRecord, VerificationReport, verify_result
from repro.congest.metrics import AlgorithmCost, ExecutionMetrics, PhaseReport
from repro.core import TriangleListing
from repro.graphs import gnp_random_graph

_SMALL_INTS = st.integers(min_value=0, max_value=2**32)
_NAMES = st.text(min_size=1, max_size=16)

_PHASES = st.builds(
    PhaseReport,
    name=_NAMES,
    rounds=_SMALL_INTS,
    messages=_SMALL_INTS,
    bits=_SMALL_INTS,
    max_link_bits=_SMALL_INTS,
)

_METRICS = st.builds(
    ExecutionMetrics,
    total_rounds=_SMALL_INTS,
    total_messages=_SMALL_INTS,
    total_bits=_SMALL_INTS,
    phases=st.lists(_PHASES, max_size=4),
    bits_received_per_node=st.dictionaries(
        st.integers(min_value=0, max_value=200), _SMALL_INTS, max_size=5
    ),
    messages_received_per_node=st.dictionaries(
        st.integers(min_value=0, max_value=200), _SMALL_INTS, max_size=5
    ),
)

_TRIANGLES = st.sets(
    st.lists(
        st.integers(min_value=0, max_value=50), min_size=3, max_size=3, unique=True
    ).map(lambda t: tuple(sorted(t))),
    max_size=5,
).map(frozenset)

_REPORTS = st.builds(
    VerificationReport,
    algorithm=_NAMES,
    sound=st.booleans(),
    total_truth=_SMALL_INTS,
    total_reported=_SMALL_INTS,
    recall=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    missed=_TRIANGLES,
    spurious=_TRIANGLES,
    solves_finding=st.booleans(),
    solves_listing=st.booleans(),
)

_EXTRAS = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8)),
    max_size=3,
)

_RECORDS = st.builds(
    ExperimentRecord,
    experiment=_NAMES,
    algorithm=_NAMES,
    model=_NAMES,
    num_nodes=_SMALL_INTS,
    num_edges=_SMALL_INTS,
    num_triangles=_SMALL_INTS,
    seed=_SMALL_INTS,
    rounds=_SMALL_INTS,
    messages=_SMALL_INTS,
    bits=_SMALL_INTS,
    recall=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    sound=st.booleans(),
    solves_finding=st.booleans(),
    solves_listing=st.booleans(),
    truncated=st.booleans(),
    extra=_EXTRAS,
)


class TestRoundTrips:
    @given(record=_RECORDS)
    @settings(max_examples=60, deadline=None)
    def test_experiment_record(self, record):
        payload = json.loads(json.dumps(record.to_dict()))
        assert ExperimentRecord.from_dict(payload) == record

    @given(metrics=_METRICS)
    @settings(max_examples=60, deadline=None)
    def test_execution_metrics(self, metrics):
        payload = json.loads(json.dumps(metrics.to_dict()))
        assert ExecutionMetrics.from_dict(payload) == metrics

    @given(report=_REPORTS)
    @settings(max_examples=60, deadline=None)
    def test_verification_report(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert VerificationReport.from_dict(payload) == report

    @given(phase=_PHASES)
    @settings(max_examples=30, deadline=None)
    def test_phase_report(self, phase):
        assert PhaseReport.from_dict(json.loads(json.dumps(phase.to_dict()))) == phase

    def test_algorithm_cost(self):
        cost = AlgorithmCost(rounds=3, messages=14, bits=150, max_bits_received=20)
        assert AlgorithmCost.from_dict(json.loads(json.dumps(cost.to_dict()))) == cost


class TestRealRunRoundTrip:
    def test_real_metrics_and_report_round_trip(self):
        graph = gnp_random_graph(20, 0.5, seed=4)
        result = TriangleListing(repetitions=1, epsilon=0.5).run(graph, seed=4)
        metrics = result.metrics
        assert ExecutionMetrics.from_dict(metrics.to_dict()) == metrics
        report = verify_result(result, graph)
        assert VerificationReport.from_dict(report.to_dict()) == report

    def test_equal_records_serialize_to_identical_bytes(self):
        graph = gnp_random_graph(20, 0.5, seed=4)
        results = [
            TriangleListing(repetitions=1, epsilon=0.5).run(graph, seed=4)
            for _ in range(2)
        ]
        reports = [verify_result(result, graph) for result in results]
        lines = {canonical_json(report.to_dict()) for report in reports}
        assert len(lines) == 1
