"""JSONL store: append, resume, byte-identical reproduction."""

from __future__ import annotations

import filecmp
import json

import pytest

from repro.analysis import SweepRunner
from repro.api import (
    AlgorithmSpec,
    RecordStore,
    SweepSpec,
    WorkloadSpec,
    load_sweep,
    run_sweep,
)
from repro.errors import AnalysisError


def _spec(experiment="store-test", num_nodes=20, seeds=(1, 2, 3)):
    return SweepSpec(
        experiment=experiment,
        algorithms=(
            AlgorithmSpec("theorem2-listing", {"repetitions": 1, "epsilon": 0.5}),
            AlgorithmSpec("naive-two-hop"),
        ),
        workload=WorkloadSpec(
            "gnp", {"num_nodes": num_nodes, "edge_probability": 0.5}
        ),
        seeds=seeds,
    )


class TestRunSweep:
    def test_one_shot_sweep_records_every_cell(self, tmp_path):
        spec = _spec()
        stored = run_sweep(spec, tmp_path / "records.jsonl")
        assert stored.completed_cells() == set(range(6))
        grouped = stored.records_by_label()
        assert set(grouped) == {"theorem2-listing", "naive-two-hop"}
        assert all(len(records) == 3 for records in grouped.values())

    def test_stored_records_match_run_grid(self, tmp_path):
        spec = _spec()
        stored = run_sweep(spec, tmp_path / "records.jsonl")
        with SweepRunner() as runner:
            direct = spec.run(runner)
        assert stored.records_by_label() == direct

    def test_interrupted_then_resumed_is_byte_identical(self, tmp_path):
        """The acceptance criterion: kill mid-sweep, resume, compare bytes."""
        spec = _spec()
        one_shot = tmp_path / "one_shot.jsonl"
        resumed = tmp_path / "resumed.jsonl"
        run_sweep(spec, one_shot)
        # "Kill" the sweep after two cells, then resume it (twice, to cover
        # repeated interruption).
        partial = run_sweep(spec, resumed, max_cells=2)
        assert partial.completed_cells() == {0, 1}
        partial = run_sweep(spec, resumed, resume=True, max_cells=1)
        assert partial.completed_cells() == {0, 1, 2}
        run_sweep(spec, resumed, resume=True)
        assert filecmp.cmp(one_shot, resumed, shallow=False)

    def test_parallel_runner_matches_serial_bytes(self, tmp_path):
        spec = _spec(seeds=(1, 2))
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        run_sweep(spec, serial)
        with SweepRunner(max_workers=2) as runner:
            run_sweep(spec, parallel, runner=runner)
        assert filecmp.cmp(serial, parallel, shallow=False)

    def test_resume_with_truncated_final_line(self, tmp_path):
        """A crash mid-write leaves a partial line; resume must heal it."""
        spec = _spec()
        one_shot = tmp_path / "one_shot.jsonl"
        crashed = tmp_path / "crashed.jsonl"
        run_sweep(spec, one_shot)
        run_sweep(spec, crashed, max_cells=2)
        with crashed.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "record", "cell": 2, "trunca')
        run_sweep(spec, crashed, resume=True)
        # Resume truncates the partial tail and reruns that cell, so the
        # healed file is again byte-identical to the one-shot run.
        assert filecmp.cmp(one_shot, crashed, shallow=False)

    def test_existing_file_without_resume_is_refused(self, tmp_path):
        spec = _spec()
        path = tmp_path / "records.jsonl"
        run_sweep(spec, path, max_cells=1)
        with pytest.raises(AnalysisError, match="resume"):
            run_sweep(spec, path)

    def test_resume_against_different_spec_is_refused(self, tmp_path):
        path = tmp_path / "records.jsonl"
        run_sweep(_spec(), path, max_cells=1)
        with pytest.raises(AnalysisError, match="different sweep spec"):
            run_sweep(_spec(num_nodes=24), path, resume=True)

    def test_resume_against_foreign_file_is_refused(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text('{"kind": "something-else"}\n', encoding="utf-8")
        with pytest.raises(AnalysisError, match="sweep header"):
            run_sweep(_spec(), path, resume=True)

    def test_unsweepable_algorithm_is_refused(self, tmp_path):
        spec = SweepSpec(
            experiment="count",
            algorithms=(AlgorithmSpec("triangle-counting"),),
            workload=WorkloadSpec("gnp", {"num_nodes": 12, "edge_probability": 0.6}),
            seeds=(1,),
        )
        with pytest.raises(AnalysisError, match="cannot be swept"):
            run_sweep(spec, tmp_path / "records.jsonl")


class TestRecordStore:
    def test_lines_are_canonical_json(self, tmp_path):
        spec = _spec(seeds=(1,))
        path = tmp_path / "records.jsonl"
        run_sweep(spec, path)
        for line in path.read_text(encoding="utf-8").splitlines():
            payload = json.loads(line)
            assert line == json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            )

    def test_header_carries_the_spec(self, tmp_path):
        spec = _spec(seeds=(1,))
        path = tmp_path / "records.jsonl"
        run_sweep(spec, path)
        stored = load_sweep(path)
        assert stored.spec == spec

    def test_corrupt_interior_line_is_an_error(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text("not json\n{}\n", encoding="utf-8")
        with pytest.raises(AnalysisError, match="not valid JSON"):
            RecordStore(path).read_all()


class TestReviewRegressions:
    """Fixes from the pre-merge review, pinned."""

    def test_resume_after_crash_during_header_write(self, tmp_path):
        """A partial header line must not wedge --resume forever."""
        spec = _spec()
        one_shot = tmp_path / "one_shot.jsonl"
        crashed = tmp_path / "crashed.jsonl"
        run_sweep(spec, one_shot)
        crashed.write_text('{"kind": "sweep-header", "schema": 1, "sp', encoding="utf-8")
        run_sweep(spec, crashed, resume=True)
        assert filecmp.cmp(one_shot, crashed, shallow=False)

    def test_record_line_missing_fields_is_an_error(self, tmp_path):
        spec = _spec(seeds=(1,))
        path = tmp_path / "records.jsonl"
        run_sweep(spec, path, max_cells=1)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "record", "cell": 1}\n')
        with pytest.raises(AnalysisError, match="missing"):
            run_sweep(spec, path, resume=True)

    def test_duplicate_cell_records_are_an_error(self, tmp_path):
        spec = _spec(seeds=(1,))
        path = tmp_path / "records.jsonl"
        run_sweep(spec, path)
        lines = path.read_text(encoding="utf-8").splitlines()
        with path.open("a", encoding="utf-8") as handle:
            handle.write(lines[1] + "\n")  # replay an already-stored cell
        with pytest.raises(AnalysisError, match="duplicate record for cell"):
            load_sweep(path)

    def test_header_schema_matches_spec_schema_version(self, tmp_path):
        from repro.api import SPEC_SCHEMA_VERSION

        spec = _spec(seeds=(1,))
        path = tmp_path / "records.jsonl"
        run_sweep(spec, path)
        header = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
        assert header["schema"] == SPEC_SCHEMA_VERSION


class TestSweepStoreWriter:
    """The in-order writer behind both run_sweep and the service dispatcher."""

    def _reference(self, spec, tmp_path):
        """Serial ground truth plus each cell's raw record document."""
        from repro.api import SweepStoreWriter  # noqa: F401  (exported)

        reference = tmp_path / "reference.jsonl"
        stored = run_sweep(spec, reference)
        docs = {cell: record.to_dict() for cell, _, record in stored.entries}
        return reference, docs

    def test_out_of_order_writes_are_flushed_in_cell_order(self, tmp_path):
        from repro.api import SweepStoreWriter

        spec = _spec()
        reference, docs = self._reference(spec, tmp_path)
        path = tmp_path / "records.jsonl"
        writer = SweepStoreWriter(spec, path)
        assert writer.pending() == list(range(6))
        # A fleet finishes cells in whatever order leases land.
        for cell in (3, 5, 1, 0, 4, 2):
            writer.write(cell, docs[cell])
        assert writer.buffered == 0
        assert writer.done == set(range(6))
        assert filecmp.cmp(reference, path, shallow=False)

    def test_buffered_records_wait_for_the_gap_cell(self, tmp_path):
        from repro.api import SweepStoreWriter

        spec = _spec()
        _, docs = self._reference(spec, tmp_path)
        writer = SweepStoreWriter(spec, tmp_path / "records.jsonl")
        writer.write(2, docs[2])
        writer.write(1, docs[1])
        assert writer.buffered == 2
        assert writer.written == 0
        assert writer.pending() == [0, 3, 4, 5]
        writer.write(0, docs[0])
        assert writer.buffered == 0
        assert writer.written == 3
        # stored() reflects the file, never the buffer.
        assert {cell for cell, _, _ in writer.stored().entries} == {0, 1, 2}

    def test_duplicate_and_out_of_range_writes_are_refused(self, tmp_path):
        from repro.api import SweepStoreWriter

        spec = _spec()
        _, docs = self._reference(spec, tmp_path)
        writer = SweepStoreWriter(spec, tmp_path / "records.jsonl")
        writer.write(0, docs[0])
        with pytest.raises(AnalysisError, match="already has a record"):
            writer.write(0, docs[0])
        writer.write(2, docs[2])  # buffered, not yet written
        with pytest.raises(AnalysisError, match="already has a record"):
            writer.write(2, docs[2])
        with pytest.raises(AnalysisError, match="outside the spec"):
            writer.write(99, docs[0])

    def test_malformed_record_fails_before_touching_the_file(self, tmp_path):
        from repro.api import SweepStoreWriter

        spec = _spec()
        path = tmp_path / "records.jsonl"
        writer = SweepStoreWriter(spec, path)
        before = path.read_bytes()
        with pytest.raises(AnalysisError):
            writer.write(0, {"not": "a record"})
        assert path.read_bytes() == before
        assert writer.buffered == 0

    def test_resume_adopts_the_prefix_and_stays_byte_identical(self, tmp_path):
        from repro.api import SweepStoreWriter

        spec = _spec()
        reference, docs = self._reference(spec, tmp_path)
        path = tmp_path / "records.jsonl"
        run_sweep(spec, path, max_cells=2)
        writer = SweepStoreWriter(spec, path, resume=True)
        assert writer.done == {0, 1}
        assert writer.pending() == [2, 3, 4, 5]
        for cell in (5, 4, 3, 2):
            writer.write(cell, docs[cell])
        assert filecmp.cmp(reference, path, shallow=False)

    def test_existing_file_without_resume_is_refused(self, tmp_path):
        from repro.api import SweepStoreWriter

        spec = _spec(seeds=(1,))
        path = tmp_path / "records.jsonl"
        run_sweep(spec, path, max_cells=1)
        with pytest.raises(AnalysisError, match="already exists"):
            SweepStoreWriter(spec, path)

    def test_resume_against_a_different_spec_is_refused(self, tmp_path):
        from repro.api import SweepStoreWriter

        path = tmp_path / "records.jsonl"
        run_sweep(_spec(seeds=(1,)), path)
        with pytest.raises(AnalysisError, match="different sweep"):
            SweepStoreWriter(_spec(seeds=(1, 2)), path, resume=True)


class TestRunSweepProgress:
    def test_progress_reports_every_completed_cell(self, tmp_path):
        spec = _spec(seeds=(1,))
        calls = []
        run_sweep(
            spec,
            tmp_path / "records.jsonl",
            progress=lambda done, total: calls.append((done, total)),
        )
        # One leading call with the resumed state, then one per cell.
        assert calls[0] == (0, 2)
        assert calls[1:] == [(1, 2), (2, 2)]

    def test_progress_sees_the_resumed_prefix(self, tmp_path):
        spec = _spec(seeds=(1,))
        path = tmp_path / "records.jsonl"
        run_sweep(spec, path, max_cells=1)
        calls = []
        run_sweep(
            spec,
            path,
            resume=True,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 2), (2, 2)]
