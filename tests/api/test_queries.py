"""QuerySpec/QueryResult documents: validation, round-trips, registry."""

import json

import pytest

from repro.api import (
    QUERY_SCHEMA_VERSION,
    QueryResult,
    QuerySpec,
    get_query_kind,
    list_query_kinds,
)
from repro.errors import AnalysisError


class TestRegistry:
    def test_kinds_are_sorted_and_complete(self):
        names = [kind.name for kind in list_query_kinds()]
        assert names == ["count", "delta-since", "edge-support", "node-counts"]

    def test_get_unknown_kind(self):
        with pytest.raises(AnalysisError, match="unknown query kind"):
            get_query_kind("cliques")

    def test_describe_shape(self):
        doc = get_query_kind("edge-support").describe()
        assert doc["name"] == "edge-support"
        assert doc["parameters"][0]["required"] is True


class TestQuerySpecValidation:
    def test_minimal_count(self):
        spec = QuerySpec(kind="count")
        assert spec.params == {}

    def test_unknown_param_rejected(self):
        with pytest.raises(AnalysisError, match="does not accept parameter"):
            QuerySpec(kind="count", params={"limit": 5})

    def test_missing_required_param(self):
        with pytest.raises(AnalysisError, match="requires parameter"):
            QuerySpec(kind="edge-support")

    def test_edges_must_be_pairs(self):
        with pytest.raises(AnalysisError, match="pair"):
            QuerySpec(kind="edge-support", params={"edges": [[1, 2, 3]]})
        with pytest.raises(AnalysisError, match="non-empty"):
            QuerySpec(kind="edge-support", params={"edges": []})
        with pytest.raises(AnalysisError, match="integer"):
            QuerySpec(kind="edge-support", params={"edges": [["a", "b"]]})

    def test_nodes_must_be_ints(self):
        with pytest.raises(AnalysisError, match="integer"):
            QuerySpec(kind="node-counts", params={"nodes": [1.5]})
        with pytest.raises(AnalysisError, match="list"):
            QuerySpec(kind="node-counts", params={"nodes": 3})

    def test_version_must_be_non_negative_int(self):
        with pytest.raises(AnalysisError, match=">= 0"):
            QuerySpec(kind="delta-since", params={"version": -1})
        with pytest.raises(AnalysisError, match="integer"):
            QuerySpec(kind="delta-since", params={"version": True})

    def test_tuples_canonicalise_to_lists(self):
        spec = QuerySpec(kind="edge-support", params={"edges": [(0, 1)]})
        assert spec.params == {"edges": [[0, 1]]}


class TestQuerySpecRoundTrip:
    def test_json_round_trip(self):
        spec = QuerySpec(kind="node-counts", params={"nodes": [3, 1]})
        again = QuerySpec.from_json(spec.to_json())
        assert again == spec
        assert again.content_hash() == spec.content_hash()

    def test_dict_schema_field(self):
        doc = QuerySpec(kind="count").to_dict()
        assert doc["schema"] == QUERY_SCHEMA_VERSION

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(AnalysisError, match="unknown fields"):
            QuerySpec.from_dict({"kind": "count", "extra": 1})

    def test_from_dict_requires_kind(self):
        with pytest.raises(AnalysisError, match="missing the 'kind'"):
            QuerySpec.from_dict({"schema": 1})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(AnalysisError, match="JSON object"):
            QuerySpec.from_dict([1, 2])

    def test_from_json_rejects_garbage(self):
        with pytest.raises(AnalysisError, match="not valid JSON"):
            QuerySpec.from_json("{nope")

    def test_future_schema_rejected(self):
        with pytest.raises(AnalysisError, match="schema"):
            QuerySpec.from_dict({"schema": 99, "kind": "count"})

    def test_specs_are_hashable(self):
        a = QuerySpec(kind="node-counts", params={"nodes": [1]})
        b = QuerySpec(kind="node-counts", params={"nodes": [1]})
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestQueryResult:
    def test_round_trip(self):
        result = QueryResult(kind="count", version=4, payload={"triangles": 9})
        again = QueryResult.from_json(result.to_json())
        assert again == result

    def test_version_validated(self):
        with pytest.raises(AnalysisError, match="non-negative"):
            QueryResult(kind="count", version=-1, payload={})

    def test_missing_fields_rejected(self):
        with pytest.raises(AnalysisError, match="missing the 'payload'"):
            QueryResult.from_dict({"kind": "count", "version": 0})

    def test_payload_must_be_jsonable(self):
        with pytest.raises(AnalysisError):
            QueryResult(kind="count", version=0, payload={"x": object()})

    def test_canonical_json_is_stable(self):
        result = QueryResult(kind="count", version=1, payload={"b": 1, "a": 2})
        assert json.loads(result.to_json()) == result.to_dict()
        assert result.to_json().index('"a"') < result.to_json().index('"b"')
