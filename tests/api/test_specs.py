"""Specs: JSON round-trips, resolution, and spec-vs-constructor parity."""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    AlgorithmSpec,
    RunSpec,
    SweepSpec,
    WorkloadSpec,
    list_algorithms,
    load_spec,
    run_specs_to_cells,
)
from repro.analysis import SweepRunner
from repro.core import (
    DolevCliqueListing,
    HeavyHashingLister,
    HeavySamplingFinder,
    LightTrianglesLister,
    LocalListing,
    NaiveTwoHopListing,
    TriangleCounting,
    TriangleFinding,
    TriangleListing,
)
from repro.errors import AnalysisError
from repro.graphs import gnp_random_graph

# ---------------------------------------------------------------------------
# JSON round-trips
# ---------------------------------------------------------------------------

_JSON_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)
_JSON_VALUES = st.recursive(
    _JSON_SCALARS,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
    ),
    max_leaves=8,
)
_PARAMS = st.dictionaries(st.text(min_size=1, max_size=10), _JSON_VALUES, max_size=4)
_NAMES = st.text(min_size=1, max_size=20)


class TestJsonRoundTrip:
    @given(name=_NAMES, params=_PARAMS, label=st.none() | _NAMES)
    @settings(max_examples=60, deadline=None)
    def test_algorithm_spec_round_trips(self, name, params, label):
        spec = AlgorithmSpec(name=name, params=params, label=label)
        assert AlgorithmSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    @given(name=_NAMES, params=_PARAMS)
    @settings(max_examples=60, deadline=None)
    def test_workload_spec_round_trips(self, name, params):
        spec = WorkloadSpec(name=name, params=params)
        assert WorkloadSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    @given(
        algorithm_params=_PARAMS,
        workload_params=_PARAMS,
        seed=st.integers(min_value=0, max_value=2**62),
        experiment=_NAMES,
    )
    @settings(max_examples=60, deadline=None)
    def test_run_spec_round_trips(
        self, algorithm_params, workload_params, seed, experiment
    ):
        spec = RunSpec(
            algorithm=AlgorithmSpec("theorem2-listing", algorithm_params),
            workload=WorkloadSpec("gnp", workload_params),
            seed=seed,
            experiment=experiment,
        )
        assert RunSpec.from_json(spec.to_json()) == spec
        assert RunSpec.from_json(spec.to_json(indent=2)) == spec

    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=2**62), min_size=1, max_size=4
        ),
        params=_PARAMS,
    )
    @settings(max_examples=60, deadline=None)
    def test_sweep_spec_round_trips(self, seeds, params):
        spec = SweepSpec(
            experiment="sweep",
            algorithms=(
                AlgorithmSpec("theorem2-listing", params, label="a"),
                AlgorithmSpec("naive-two-hop", label="b"),
            ),
            workload=WorkloadSpec("gnp", {"num_nodes": 10, "edge_probability": 0.5}),
            seeds=tuple(seeds),
        )
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_tuples_canonicalise_to_lists(self):
        spec = WorkloadSpec("union-of-cliques", {"clique_sizes": (3, 4)})
        assert spec.params["clique_sizes"] == [3, 4]
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_non_json_params_rejected(self):
        with pytest.raises(AnalysisError, match="JSON"):
            AlgorithmSpec("theorem2-listing", {"rng": object()})
        with pytest.raises(AnalysisError, match="keys must be strings"):
            WorkloadSpec("gnp", {"map": {1: 2}})

    def test_unsupported_schema_version_rejected(self):
        payload = RunSpec(
            algorithm=AlgorithmSpec("naive-two-hop"),
            workload=WorkloadSpec("cycle", {"num_nodes": 5}),
        ).to_dict()
        payload["schema"] = 999
        with pytest.raises(AnalysisError, match="schema version"):
            RunSpec.from_dict(payload)

    def test_load_spec_dispatches_on_kind(self):
        run = RunSpec(
            algorithm=AlgorithmSpec("naive-two-hop"),
            workload=WorkloadSpec("cycle", {"num_nodes": 5}),
        )
        assert load_spec(run.to_json()) == run
        sweep = SweepSpec(
            experiment="e",
            algorithms=(AlgorithmSpec("naive-two-hop"),),
            workload=WorkloadSpec("cycle", {"num_nodes": 5}),
            seeds=(1,),
        )
        assert load_spec(sweep.to_json()) == sweep
        with pytest.raises(AnalysisError, match="kind"):
            load_spec(json.dumps({"schema": 1}))


# ---------------------------------------------------------------------------
# resolution and parity with the direct constructors
# ---------------------------------------------------------------------------

#: Constructor parameters used for the all-registry differential test.
#: Every registered algorithm appears here, mapped to (params, the direct
#: constructor call they must resolve to).
_DIFFERENTIAL_CASES = {
    "a1-heavy-sampling": (
        {"epsilon": 0.5},
        lambda: HeavySamplingFinder(epsilon=0.5),
    ),
    "a2-heavy-hashing": (
        {"epsilon": 0.5},
        lambda: HeavyHashingLister(epsilon=0.5),
    ),
    "a3-light-listing": (
        {"epsilon": 0.5},
        lambda: LightTrianglesLister(epsilon=0.5),
    ),
    "theorem1-finding": (
        {"repetitions": 1, "epsilon": 0.5},
        lambda: TriangleFinding(repetitions=1, epsilon=0.5),
    ),
    "theorem2-listing": (
        {"repetitions": 1, "epsilon": 0.5},
        lambda: TriangleListing(repetitions=1, epsilon=0.5),
    ),
    "dolev-clique-listing": ({}, DolevCliqueListing),
    "naive-two-hop": ({}, NaiveTwoHopListing),
    "local-listing": ({}, LocalListing),
    "triangle-counting": ({}, TriangleCounting),
}

_WORKLOAD = WorkloadSpec("gnp", {"num_nodes": 24, "edge_probability": 0.5})
_SEED = 13


class TestSpecConstructorParity:
    def test_every_registered_algorithm_has_a_differential_case(self):
        assert set(_DIFFERENTIAL_CASES) == {
            entry.name for entry in list_algorithms()
        }

    @pytest.mark.parametrize("name", sorted(_DIFFERENTIAL_CASES))
    def test_spec_run_matches_direct_constructor(self, name):
        """Same seeds ⇒ identical ExecutionMetrics and outputs, per algorithm."""
        params, direct_constructor = _DIFFERENTIAL_CASES[name]
        spec = RunSpec(
            algorithm=AlgorithmSpec(name, params),
            workload=_WORKLOAD,
            seed=_SEED,
        )
        # Round-trip the spec through JSON first: the resolved run must be
        # identical for the original and the rehydrated document.
        rehydrated = RunSpec.from_json(spec.to_json())
        assert rehydrated == spec

        graph = gnp_random_graph(24, 0.5, seed=_SEED)
        direct = direct_constructor().run(graph, seed=_SEED)
        via_spec = rehydrated.run_raw()

        if name == "triangle-counting":
            assert via_spec == direct
            return
        assert via_spec.output == direct.output
        assert via_spec.metrics == direct.metrics
        assert via_spec.cost == direct.cost
        assert via_spec.algorithm == direct.algorithm
        assert via_spec.parameters == direct.parameters
        assert via_spec.truncated == direct.truncated

    def test_run_record_matches_run_single_fields(self):
        spec = RunSpec(
            algorithm=AlgorithmSpec("theorem2-listing", {"repetitions": 1, "epsilon": 0.5}),
            workload=_WORKLOAD,
            seed=_SEED,
            experiment="parity",
        )
        record = spec.run()
        assert record.experiment == "parity"
        assert record.seed == _SEED
        assert record.sound
        result = spec.run_raw()
        assert record.rounds == result.cost.rounds
        assert record.bits == result.cost.bits

    def test_counting_run_record_is_rejected(self):
        spec = RunSpec(
            algorithm=AlgorithmSpec("triangle-counting"),
            workload=_WORKLOAD,
            seed=_SEED,
        )
        with pytest.raises(AnalysisError, match="run_raw"):
            spec.run()


class TestSweepSpec:
    def _spec(self, seeds=(1, 2)):
        return SweepSpec(
            experiment="grid",
            algorithms=(
                AlgorithmSpec(
                    "theorem2-listing", {"repetitions": 1, "epsilon": 0.5}
                ),
                AlgorithmSpec("naive-two-hop"),
            ),
            workload=WorkloadSpec("gnp", {"num_nodes": 20, "edge_probability": 0.5}),
            seeds=seeds,
        )

    def test_cells_are_picklable_and_workload_major(self):
        spec = self._spec()
        cells = spec.cells()
        assert len(cells) == 4
        assert [cell.seed for cell in cells] == [1, 1, 2, 2]
        for cell in cells:
            pickle.dumps(cell)
        assert spec.cell_labels() == [
            "theorem2-listing",
            "naive-two-hop",
            "theorem2-listing",
            "naive-two-hop",
        ]

    def test_run_feeds_run_grid_unchanged(self):
        spec = self._spec()
        via_spec = spec.run()
        with SweepRunner() as runner:
            direct = runner.run_grid(
                spec.experiment,
                spec.algorithm_factories(),
                spec.graph_factory(),
                spec.seeds,
            )
        assert via_spec == direct

    def test_duplicate_labels_rejected(self):
        with pytest.raises(AnalysisError, match="distinct"):
            SweepSpec(
                experiment="dup",
                algorithms=(
                    AlgorithmSpec("naive-two-hop"),
                    AlgorithmSpec("naive-two-hop"),
                ),
                workload=WorkloadSpec("cycle", {"num_nodes": 4}),
                seeds=(1,),
            )

    def test_empty_grid_rejected(self):
        with pytest.raises(AnalysisError, match="algorithm"):
            SweepSpec(
                experiment="e",
                algorithms=(),
                workload=WorkloadSpec("cycle", {"num_nodes": 4}),
                seeds=(1,),
            )
        with pytest.raises(AnalysisError, match="seed"):
            SweepSpec(
                experiment="e",
                algorithms=(AlgorithmSpec("naive-two-hop"),),
                workload=WorkloadSpec("cycle", {"num_nodes": 4}),
                seeds=(),
            )

    def test_unsweepable_algorithm_rejected(self):
        spec = SweepSpec(
            experiment="count",
            algorithms=(AlgorithmSpec("triangle-counting"),),
            workload=WorkloadSpec("gnp", {"num_nodes": 12, "edge_probability": 0.6}),
            seeds=(1,),
        )
        with pytest.raises(AnalysisError, match="cannot be swept"):
            spec.run()

    def test_with_spawned_seeds_matches_runner_seeds(self):
        spec = SweepSpec.with_spawned_seeds(
            "spawned",
            [AlgorithmSpec("naive-two-hop")],
            WorkloadSpec("cycle", {"num_nodes": 6}),
            base_seed=42,
            num_seeds=3,
        )
        assert list(spec.seeds) == SweepRunner.spawn_seeds(42, 3)

    def test_run_specs_to_cells_orders_cells(self):
        runs = [
            RunSpec(
                algorithm=AlgorithmSpec("naive-two-hop"),
                workload=WorkloadSpec("cycle", {"num_nodes": n}),
                seed=n,
            )
            for n in (4, 5)
        ]
        cells = run_specs_to_cells(runs)
        assert [cell.seed for cell in cells] == [4, 5]


class TestReviewRegressions:
    """Fixes from the pre-merge review, pinned."""

    def test_non_string_label_rejected(self):
        with pytest.raises(AnalysisError, match="label must be a string"):
            AlgorithmSpec("naive-two-hop", label=5)

    def test_non_integer_seeds_rejected(self):
        for bad_seeds in ((1.7,), (True,), ("3",)):
            with pytest.raises(AnalysisError, match="seeds must be integers"):
                SweepSpec(
                    experiment="e",
                    algorithms=(AlgorithmSpec("naive-two-hop"),),
                    workload=WorkloadSpec("cycle", {"num_nodes": 4}),
                    seeds=bad_seeds,
                )

    def test_nested_spec_payloads_must_be_objects(self):
        with pytest.raises(AnalysisError, match="JSON object"):
            AlgorithmSpec.from_dict("theorem1-finding")
        with pytest.raises(AnalysisError, match="missing 'name'"):
            WorkloadSpec.from_dict({})

    def test_run_spec_non_integer_seed_rejected(self):
        payload = RunSpec(
            algorithm=AlgorithmSpec("naive-two-hop"),
            workload=WorkloadSpec("cycle", {"num_nodes": 4}),
        ).to_dict()
        for bad_seed in (7.9, True, "7"):
            payload["seed"] = bad_seed
            with pytest.raises(AnalysisError, match="seed must be an integer"):
                RunSpec.from_dict(payload)

    def test_non_finite_floats_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(AnalysisError, match="NaN/Infinity"):
                AlgorithmSpec("theorem2-listing", {"epsilon": bad})
            with pytest.raises(AnalysisError, match="NaN/Infinity"):
                WorkloadSpec("gnp", {"edge_probability": bad})

    def test_specs_are_hashable_value_objects(self):
        first = AlgorithmSpec("theorem2-listing", {"a": 1, "b": 2})
        second = AlgorithmSpec("theorem2-listing", {"b": 2, "a": 1})
        assert first == second and hash(first) == hash(second)
        assert len({first, second}) == 1
        workload = WorkloadSpec("gnp", {"num_nodes": 10, "edge_probability": 0.5})
        assert hash(workload) == hash(
            WorkloadSpec("gnp", {"edge_probability": 0.5, "num_nodes": 10})
        )
        run = RunSpec(algorithm=first, workload=workload, seed=1)
        assert len({run, RunSpec(algorithm=second, workload=workload, seed=1)}) == 1
