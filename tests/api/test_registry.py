"""Registry: completeness over the repository, schemas, decorators."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    get_algorithm,
    get_workload,
    list_algorithms,
    list_workloads,
    register_algorithm,
    register_workload,
    unregister_algorithm,
    unregister_workload,
)
from repro.core import TriangleAlgorithm
from repro.errors import AnalysisError
from repro.graphs import Graph, generators


def _all_subclasses(cls):
    found = set()
    for subclass in cls.__subclasses__():
        found.add(subclass)
        found |= _all_subclasses(subclass)
    return found


class TestCompleteness:
    def test_every_triangle_algorithm_subclass_is_registered(self):
        registered_factories = {entry.factory for entry in list_algorithms()}
        for subclass in _all_subclasses(TriangleAlgorithm):
            assert subclass in registered_factories, (
                f"{subclass.__name__} is a TriangleAlgorithm but is not "
                "registered in repro.api"
            )

    def test_composite_algorithms_are_registered(self):
        for name in (
            "theorem1-finding",
            "theorem2-listing",
            "dolev-clique-listing",
            "triangle-counting",
        ):
            assert get_algorithm(name) is not None

    def test_every_public_generator_is_registered(self):
        registered_factories = {entry.factory for entry in list_workloads()}
        public_generators = [
            getattr(generators, name)
            for name in dir(generators)
            if not name.startswith("_")
            and callable(getattr(generators, name))
            and getattr(getattr(generators, name), "__module__", "")
            == generators.__name__
        ]
        assert public_generators, "no generators found — test is broken"
        for generator in public_generators:
            assert generator in registered_factories, (
                f"generator {generator.__name__} is not registered in repro.api"
            )

    def test_counting_is_not_sweepable(self):
        assert not get_algorithm("triangle-counting").sweepable
        assert get_algorithm("theorem2-listing").sweepable


class TestSchemas:
    def test_algorithm_schema_matches_constructor(self):
        entry = get_algorithm("a1-heavy-sampling")
        names = [parameter.name for parameter in entry.parameters]
        assert names == [
            "epsilon",
            "sample_cap_constant",
            "kernel",
            "backend",
            "chunk_bytes",
        ]
        required = [p.name for p in entry.parameters if p.required]
        assert required == ["epsilon"]

    def test_describe_is_json_serializable(self):
        for entry in list_algorithms() + list_workloads():
            json.dumps(entry.describe())

    def test_unknown_parameter_rejected(self):
        with pytest.raises(AnalysisError, match="does not accept"):
            get_algorithm("naive-two-hop").build({"bogus": 1})

    def test_missing_required_parameter_rejected(self):
        with pytest.raises(AnalysisError, match="requires parameters"):
            get_algorithm("a2-heavy-hashing").build({})

    def test_workload_unknown_parameter_rejected(self):
        with pytest.raises(AnalysisError, match="does not accept"):
            get_workload("cycle").build({"seed": 1})


class TestLookup:
    def test_lookup_is_case_insensitive(self):
        assert get_algorithm("Theorem2-Listing") is get_algorithm("theorem2-listing")

    def test_unknown_algorithm_names_registered_ones(self):
        with pytest.raises(AnalysisError, match="registered algorithms"):
            get_algorithm("no-such-algorithm")

    def test_unknown_workload_names_registered_ones(self):
        with pytest.raises(AnalysisError, match="registered workloads"):
            get_workload("no-such-workload")

    def test_listings_are_sorted(self):
        names = [entry.name for entry in list_algorithms()]
        assert names == sorted(names)
        names = [entry.name for entry in list_workloads()]
        assert names == sorted(names)


class TestDecorators:
    def test_register_and_unregister_algorithm(self):
        @register_algorithm("test-dummy-algo", kind="listing")
        class Dummy:
            name = "test-dummy-algo"
            model = "CONGEST"

            def __init__(self, knob: int = 3) -> None:
                self.knob = knob

        try:
            entry = get_algorithm("test-dummy-algo")
            assert entry.factory is Dummy
            assert entry.build({"knob": 5}).knob == 5
        finally:
            unregister_algorithm("test-dummy-algo")
        with pytest.raises(AnalysisError):
            get_algorithm("test-dummy-algo")

    def test_register_and_unregister_workload(self):
        @register_workload("test-dummy-workload")
        def dummy_workload(num_nodes: int, seed=None) -> Graph:
            return Graph(num_nodes)

        try:
            entry = get_workload("test-dummy-workload")
            assert entry.takes_seed
            graph = entry.build({"num_nodes": 4}, seed=1)
            assert graph.num_nodes == 4
        finally:
            unregister_workload("test-dummy-workload")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AnalysisError, match="already registered"):
            register_algorithm("theorem2-listing", kind="listing")(object)
        with pytest.raises(AnalysisError, match="already registered"):
            register_workload("gnp")(lambda: None)


class TestWorkloadBuild:
    def test_tuple_returning_generators_are_unwrapped(self):
        graph = get_workload("planted").build(
            {"num_nodes": 12, "num_planted": 2}, seed=3
        )
        assert isinstance(graph, Graph)
        graph = get_workload("heavy-edge").build({"num_nodes": 10, "support": 4})
        assert isinstance(graph, Graph)

    def test_pinned_seed_overrides_harness_seed(self):
        entry = get_workload("gnp")
        params = {"num_nodes": 20, "edge_probability": 0.5, "seed": 9}
        first = entry.build(params, seed=1)
        second = entry.build(params, seed=2)
        assert sorted(first.edges()) == sorted(second.edges())

    def test_harness_seed_resamples(self):
        entry = get_workload("gnp")
        params = {"num_nodes": 20, "edge_probability": 0.5}
        first = entry.build(params, seed=1)
        second = entry.build(params, seed=2)
        assert sorted(first.edges()) != sorted(second.edges())
