"""The ``repro`` CLI: subcommands, JSON output, exit codes."""

from __future__ import annotations

import filecmp
import json

from repro.api import AlgorithmSpec, RunSpec, SweepSpec, WorkloadSpec
from repro.api.cli import main


def _run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def _sweep_spec_file(tmp_path, seeds=(1, 2)):
    spec = SweepSpec(
        experiment="cli-sweep",
        algorithms=(
            AlgorithmSpec("theorem2-listing", {"repetitions": 1, "epsilon": 0.5}),
            AlgorithmSpec("naive-two-hop"),
        ),
        workload=WorkloadSpec("gnp", {"num_nodes": 18, "edge_probability": 0.5}),
        seeds=seeds,
    )
    path = tmp_path / "sweep.json"
    path.write_text(spec.to_json(indent=2), encoding="utf-8")
    return path


class TestList:
    def test_human_listing(self, capsys):
        code, out, _ = _run(capsys, "list")
        assert code == 0
        assert "theorem2-listing" in out
        assert "gnp" in out

    def test_json_listing(self, capsys):
        code, out, _ = _run(capsys, "list", "--json")
        assert code == 0
        payload = json.loads(out)
        names = {entry["name"] for entry in payload["algorithms"]}
        assert "theorem2-listing" in names
        workloads = {entry["name"] for entry in payload["workloads"]}
        assert {"gnp", "ba", "random-regular"} <= workloads
        for entry in payload["algorithms"]:
            assert "parameters" in entry

    def test_filtered_listing(self, capsys):
        code, out, _ = _run(capsys, "list", "workloads", "--json")
        assert code == 0
        payload = json.loads(out)
        assert "workloads" in payload and "algorithms" not in payload


class TestRun:
    def test_run_from_flags_json(self, capsys):
        code, out, _ = _run(
            capsys,
            "run",
            "--algorithm", "theorem2-listing",
            "--algorithm-params", '{"repetitions": 1, "epsilon": 0.5}',
            "--workload", "gnp",
            "--workload-params", '{"num_nodes": 18, "edge_probability": 0.5}',
            "--seed", "3",
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        record = payload["record"]
        assert record["seed"] == 3
        assert record["sound"] is True
        assert record["rounds"] > 0

    def test_run_from_spec_file(self, capsys, tmp_path):
        spec = RunSpec(
            algorithm=AlgorithmSpec("naive-two-hop"),
            workload=WorkloadSpec("gnp", {"num_nodes": 16, "edge_probability": 0.5}),
            seed=5,
        )
        path = tmp_path / "run.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        code, out, _ = _run(capsys, "run", "--spec", str(path), "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["spec"] == spec.to_dict()

    def test_run_counting_uses_native_result(self, capsys):
        code, out, _ = _run(
            capsys,
            "run",
            "--algorithm", "triangle-counting",
            "--workload", "gnp",
            "--workload-params", '{"num_nodes": 14, "edge_probability": 0.6}',
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert "total_triangles" in payload["result"]

    def test_run_out_appends_record_line(self, capsys, tmp_path):
        out_file = tmp_path / "records.jsonl"
        code, _, _ = _run(
            capsys,
            "run",
            "--algorithm", "naive-two-hop",
            "--workload", "cycle",
            "--workload-params", '{"num_nodes": 9}',
            "--out", str(out_file),
        )
        assert code == 0
        lines = out_file.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["record"]["algorithm"] == "naive-two-hop"

    def test_unknown_algorithm_exits_2(self, capsys):
        code, _, err = _run(
            capsys, "run", "--algorithm", "nope", "--workload", "gnp"
        )
        assert code == 2
        assert "registered algorithms" in err

    def test_missing_arguments_exit_2(self, capsys):
        code, _, err = _run(capsys, "run")
        assert code == 2
        assert "--spec" in err


class TestSweep:
    def test_sweep_and_resume_byte_identical(self, capsys, tmp_path):
        spec_path = _sweep_spec_file(tmp_path)
        one_shot = tmp_path / "one_shot.jsonl"
        resumed = tmp_path / "resumed.jsonl"
        code, _, _ = _run(capsys, "sweep", str(spec_path), "--out", str(one_shot))
        assert code == 0
        code, out, _ = _run(
            capsys,
            "sweep", str(spec_path), "--out", str(resumed), "--max-cells", "2",
        )
        assert code == 0
        assert "2/4 cells" in out
        code, _, _ = _run(
            capsys, "sweep", str(spec_path), "--out", str(resumed), "--resume"
        )
        assert code == 0
        assert filecmp.cmp(one_shot, resumed, shallow=False)

    def test_sweep_json_output(self, capsys, tmp_path):
        spec_path = _sweep_spec_file(tmp_path, seeds=(1,))
        out_file = tmp_path / "records.jsonl"
        code, out, _ = _run(
            capsys, "sweep", str(spec_path), "--out", str(out_file), "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["cells_total"] == 2
        assert payload["cells_completed"] == 2
        assert len(payload["records"]) == 2
        assert payload["records"][0]["record"]["sound"] is True

    def test_sweep_refuses_existing_out_without_resume(self, capsys, tmp_path):
        spec_path = _sweep_spec_file(tmp_path, seeds=(1,))
        out_file = tmp_path / "records.jsonl"
        assert _run(capsys, "sweep", str(spec_path), "--out", str(out_file))[0] == 0
        code, _, err = _run(capsys, "sweep", str(spec_path), "--out", str(out_file))
        assert code == 2
        assert "--resume" in err

    def test_sweep_rejects_run_spec(self, capsys, tmp_path):
        run_spec = RunSpec(
            algorithm=AlgorithmSpec("naive-two-hop"),
            workload=WorkloadSpec("cycle", {"num_nodes": 6}),
        )
        path = tmp_path / "run.json"
        path.write_text(run_spec.to_json(), encoding="utf-8")
        code, _, err = _run(capsys, "sweep", str(path))
        assert code == 2
        assert "repro run" in err

    def test_missing_spec_file_exits_2(self, capsys, tmp_path):
        code, _, err = _run(capsys, "sweep", str(tmp_path / "nope.json"))
        assert code == 2
        assert "cannot read spec file" in err


class TestTable1:
    def test_human_table(self, capsys):
        code, out, _ = _run(capsys, "table1", "--num-nodes", "500")
        assert code == 0
        assert "Theorem 1" in out and "Theorem 2" in out

    def test_json_table(self, capsys):
        code, out, _ = _run(capsys, "table1", "--num-nodes", "500", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["num_nodes"] == 500
        assert payload["predicted_rounds"]["theorem2-listing-congest"] > 0


class TestEntryPoints:
    @staticmethod
    def _env():
        import os
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        return env

    def test_python_m_repro(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
            env=self._env(),
        )
        assert result.returncode == 0
        assert "repro" in result.stdout

    def test_python_m_repro_api(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro.api", "list", "algorithms"],
            capture_output=True,
            text=True,
            env=self._env(),
        )
        assert result.returncode == 0
        assert "theorem2-listing" in result.stdout


class TestReviewRegressions:
    """Fixes from the pre-merge review, pinned."""

    def test_schema_valid_but_bad_constructor_value_exits_2(self, capsys):
        # `kernel` is a valid parameter name, so registry validation passes
        # and the failure surfaces as the constructor's ValueError; the CLI
        # must still turn it into exit code 2, not a traceback.
        code, _, err = _run(
            capsys,
            "run",
            "--algorithm", "theorem1-finding",
            "--algorithm-params", '{"kernel": "turbo"}',
            "--workload", "gnp",
            "--workload-params", '{"num_nodes": 10, "edge_probability": 0.5}',
        )
        assert code == 2
        assert "kernel" in err

    def test_run_spec_missing_workload_exits_2(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(
            '{"schema": 1, "kind": "run", "algorithm": {"name": "naive-two-hop"}}',
            encoding="utf-8",
        )
        code, _, err = _run(capsys, "run", "--spec", str(path))
        assert code == 2
        assert "workload" in err

    def test_counting_run_out_persists_native_result(self, capsys, tmp_path):
        out_file = tmp_path / "counting.jsonl"
        code, _, _ = _run(
            capsys,
            "run",
            "--algorithm", "triangle-counting",
            "--workload", "gnp",
            "--workload-params", '{"num_nodes": 12, "edge_probability": 0.6}',
            "--out", str(out_file),
        )
        assert code == 0
        lines = out_file.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["result"]["total_triangles"] >= 0

    def test_malformed_nested_spec_fields_exit_2(self, capsys, tmp_path):
        # algorithm given as a bare string instead of an object
        path = tmp_path / "bad1.json"
        path.write_text(
            '{"schema": 1, "kind": "run", "algorithm": "theorem1-finding", '
            '"workload": {"name": "gnp", "params": {}}}',
            encoding="utf-8",
        )
        code, _, err = _run(capsys, "run", "--spec", str(path))
        assert code == 2
        assert "JSON object" in err
        # algorithm object missing its name
        path = tmp_path / "bad2.json"
        path.write_text(
            '{"schema": 1, "kind": "run", "algorithm": {}, '
            '"workload": {"name": "gnp", "params": {}}}',
            encoding="utf-8",
        )
        code, _, err = _run(capsys, "run", "--spec", str(path))
        assert code == 2
        assert "missing 'name'" in err

    def test_malformed_sweep_arrays_exit_2(self, capsys, tmp_path):
        path = tmp_path / "bad3.json"
        path.write_text(
            '{"schema": 1, "kind": "sweep", "experiment": "e", '
            '"algorithms": "naive-two-hop", '
            '"workload": {"name": "gnp", "params": {}}, "seeds": [1]}',
            encoding="utf-8",
        )
        code, _, err = _run(capsys, "sweep", str(path))
        assert code == 2
        assert "JSON array" in err
        path = tmp_path / "bad4.json"
        path.write_text(
            '{"schema": 1, "kind": "sweep", "experiment": "e", '
            '"algorithms": [{"name": "naive-two-hop"}], '
            '"workload": {"name": "gnp", "params": {}}, "seeds": [[1]]}',
            encoding="utf-8",
        )
        code, _, err = _run(capsys, "sweep", str(path))
        assert code == 2
        assert "integers" in err

    def test_spec_combined_with_flags_exits_2(self, capsys, tmp_path):
        spec = RunSpec(
            algorithm=AlgorithmSpec("naive-two-hop"),
            workload=WorkloadSpec("cycle", {"num_nodes": 6}),
        )
        path = tmp_path / "run.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        code, _, err = _run(capsys, "run", "--spec", str(path), "--seed", "42")
        assert code == 2
        assert "--seed" in err

    def test_unwritable_out_path_exits_2(self, capsys, tmp_path):
        code, _, err = _run(
            capsys,
            "run",
            "--algorithm", "naive-two-hop",
            "--workload", "cycle",
            "--workload-params", '{"num_nodes": 6}',
            "--out", str(tmp_path / "no-such-dir" / "out.jsonl"),
        )
        assert code == 2
        assert "repro: error:" in err


class TestSweepDiagnostics:
    """PR-8 satellites: --progress, plane diagnostics, cache counters."""

    def test_progress_lines_go_to_stderr(self, capsys, tmp_path):
        path = _sweep_spec_file(tmp_path, seeds=(1,))
        code, out, err = _run(
            capsys, "sweep", str(path),
            "--out", str(tmp_path / "records.jsonl"),
            "--progress",
        )
        assert code == 0
        # One leading line with the resumed state, then one per cell.
        lines = [line for line in err.splitlines() if "cells" in line]
        assert lines[0] == "sweep 'cli-sweep': 0/2 cells"
        assert lines[-1] == "sweep 'cli-sweep': 2/2 cells"
        assert "0/2" not in out

    def test_json_pins_the_plane_diagnostic_keys(self, capsys, tmp_path):
        path = _sweep_spec_file(tmp_path, seeds=(1,))
        code, out, _ = _run(
            capsys, "sweep", str(path),
            "--out", str(tmp_path / "records.jsonl"),
            "--json",
        )
        assert code == 0
        plane = json.loads(out)["plane"]
        assert {
            "plane",
            "cells",
            "cache_hits",
            "executed",
            "workloads_shared",
            "pickled_bytes_per_cell",
        } <= set(plane)
        assert plane["cells"] == 2
        assert plane["executed"] == 2

    def test_text_summary_reports_plane_and_cache_counters(
        self, capsys, tmp_path
    ):
        path = _sweep_spec_file(tmp_path, seeds=(1,))
        cache_dir = tmp_path / "cache"
        code, out, _ = _run(
            capsys, "sweep", str(path),
            "--out", str(tmp_path / "first.jsonl"),
            "--cache", str(cache_dir),
        )
        assert code == 0
        assert "plane=" in out and "bytes_per_cell=" in out
        assert "2 new" in out
        code, out, _ = _run(
            capsys, "sweep", str(path),
            "--out", str(tmp_path / "second.jsonl"),
            "--cache", str(cache_dir),
        )
        assert code == 0
        assert "2 hits" in out and "0 misses" in out

    def test_json_reports_cache_stats(self, capsys, tmp_path):
        path = _sweep_spec_file(tmp_path, seeds=(1,))
        cache_dir = tmp_path / "cache"
        _run(
            capsys, "sweep", str(path),
            "--out", str(tmp_path / "first.jsonl"),
            "--cache", str(cache_dir),
        )
        code, out, _ = _run(
            capsys, "sweep", str(path),
            "--out", str(tmp_path / "second.jsonl"),
            "--cache", str(cache_dir), "--json",
        )
        assert code == 0
        stats = json.loads(out)["cache"]
        assert stats["hits"] == 2
        assert stats["misses"] == 0
