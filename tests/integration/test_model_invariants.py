"""Property-based integration tests: model-level invariants under random inputs.

Hypothesis drives random workloads through the full algorithms and asserts
the invariants that must hold for *every* execution (soundness, budget
discipline, metric consistency), as opposed to the probabilistic guarantees
covered by the statistical tests.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    DolevCliqueListing,
    HeavyHashingLister,
    HeavySamplingFinder,
    LightTrianglesLister,
    NaiveTwoHopListing,
    TriangleListing,
)
from repro.graphs import Graph, gnp_random_graph, list_triangles


graph_params = st.tuples(
    st.integers(min_value=2, max_value=18),  # nodes
    st.floats(min_value=0.0, max_value=0.8),  # density
    st.integers(min_value=0, max_value=1000),  # seed
)

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_graph(params) -> Graph:
    num_nodes, probability, seed = params
    return gnp_random_graph(num_nodes, probability, seed=seed)


@given(graph_params, st.floats(min_value=0.0, max_value=1.0))
@settings(**COMMON_SETTINGS)
def test_a1_soundness_for_any_epsilon(params, epsilon):
    graph = build_graph(params)
    result = HeavySamplingFinder(epsilon=epsilon).run(graph, seed=params[2])
    result.check_soundness(graph)


@given(graph_params, st.floats(min_value=0.0, max_value=1.0))
@settings(**COMMON_SETTINGS)
def test_a2_soundness_for_any_epsilon(params, epsilon):
    graph = build_graph(params)
    result = HeavyHashingLister(epsilon=epsilon).run(graph, seed=params[2])
    result.check_soundness(graph)


@given(graph_params, st.floats(min_value=0.0, max_value=1.0))
@settings(**COMMON_SETTINGS)
def test_a3_soundness_and_budget(params, epsilon):
    graph = build_graph(params)
    algorithm = LightTrianglesLister(epsilon=epsilon, budget_constant=8.0)
    result = algorithm.run(graph, seed=params[2])
    result.check_soundness(graph)
    from repro.core import a3_round_budget

    assert result.truncated or result.rounds <= a3_round_budget(
        graph.num_nodes, epsilon, 8.0
    )


@given(graph_params)
@settings(**COMMON_SETTINGS)
def test_naive_baseline_is_exact_on_everything(params):
    graph = build_graph(params)
    result = NaiveTwoHopListing().run(graph, seed=0)
    assert result.triangles_found() == set(list_triangles(graph))
    assert result.rounds == graph.max_degree()


@given(graph_params)
@settings(**COMMON_SETTINGS)
def test_dolev_clique_is_exact_on_everything(params):
    graph = build_graph(params)
    result = DolevCliqueListing().run(graph, seed=0)
    assert result.triangles_found() == set(list_triangles(graph))


@given(graph_params)
@settings(**COMMON_SETTINGS)
def test_theorem2_listing_invariants(params):
    graph = build_graph(params)
    result = TriangleListing(repetitions=1, epsilon=0.5).run(graph, seed=params[2])
    result.check_soundness(graph)
    # Cost metrics are internally consistent.
    assert result.cost.rounds == result.metrics.total_rounds
    assert result.cost.messages == result.metrics.total_messages
    assert result.cost.bits == result.metrics.total_bits
    # Every reported triangle is attributed to at least one node.
    assert result.output.total_reported() >= len(result.triangles_found())
