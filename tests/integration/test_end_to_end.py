"""End-to-end integration tests: full algorithms on varied workloads.

These tests exercise the whole stack — generators, simulator, algorithms,
verification, lower-bound accounting — on single instances, checking the
cross-cutting invariants the paper's story relies on.
"""

import pytest

from repro.analysis import (
    nodes_reporting_foreign_triangles,
    predicted_round_complexities,
    render_table1,
    verify_result,
)
from repro.core import (
    DolevCliqueListing,
    NaiveTwoHopListing,
    TriangleFinding,
    TriangleListing,
    account_information,
    theorem3_round_lower_bound,
)
from repro.graphs import (
    barabasi_albert_graph,
    count_triangles,
    gnp_random_graph,
    lollipop_graph,
    union_of_cliques,
)

ALL_LISTING_ALGORITHMS = [
    ("theorem2", lambda: TriangleListing(repetitions=2, epsilon=0.5)),
    ("naive", lambda: NaiveTwoHopListing()),
    ("dolev", lambda: DolevCliqueListing()),
]


class TestAllListersAgreeWithGroundTruth:
    @pytest.mark.parametrize("name,factory", ALL_LISTING_ALGORITHMS)
    def test_on_random_graph(self, name, factory, medium_dense_graph):
        result = factory().run(medium_dense_graph, seed=13)
        report = verify_result(result, medium_dense_graph)
        assert report.sound
        if name != "theorem2":
            # The deterministic algorithms must achieve full recall;
            # Theorem 2 with two repetitions virtually always does too but
            # its guarantee is probabilistic, so assert a high floor instead.
            assert report.solves_listing
        else:
            assert report.recall >= 0.95

    @pytest.mark.parametrize("name,factory", ALL_LISTING_ALGORITHMS)
    def test_on_social_network_style_graph(self, name, factory):
        graph = barabasi_albert_graph(40, 4, seed=21)
        result = factory().run(graph, seed=21)
        report = verify_result(result, graph)
        assert report.sound
        assert report.recall >= 0.9

    @pytest.mark.parametrize("name,factory", ALL_LISTING_ALGORITHMS)
    def test_on_clique_union(self, name, factory):
        graph = union_of_cliques([8, 5, 3, 3])
        result = factory().run(graph, seed=2)
        report = verify_result(result, graph)
        assert report.sound
        assert report.recall >= 0.9


class TestLocalityContrast:
    def test_sublinear_listing_requires_foreign_reporting(self):
        # The paper's discussion of Proposition 5: a listing algorithm that
        # beats the local-listing floor must have some node output a
        # triangle it does not belong to.  Verify our Theorem-2
        # implementation indeed uses that mechanism, while the naive
        # baseline never does.
        graph = gnp_random_graph(36, 0.5, seed=17)
        sublinear = TriangleListing(repetitions=2, epsilon=0.5).run(graph, seed=17)
        naive = NaiveTwoHopListing().run(graph, seed=17)
        assert nodes_reporting_foreign_triangles(sublinear, graph)
        assert not nodes_reporting_foreign_triangles(naive, graph)

    def test_diameter_does_not_drive_cost(self):
        # A lollipop graph has large diameter but its triangles sit in the
        # clique head; the triangle algorithms' cost is governed by
        # congestion (degree), not by the diameter, unlike global problems.
        graph = lollipop_graph(12, 20)
        result = TriangleListing(repetitions=2, epsilon=0.5).run(graph, seed=3)
        assert result.solves_listing(graph)


class TestLowerBoundConsistency:
    def test_every_listing_run_respects_its_information_floor(self):
        graph = gnp_random_graph(32, 0.5, seed=23)
        for factory in (
            lambda: TriangleListing(repetitions=1, epsilon=0.5),
            lambda: NaiveTwoHopListing(),
            lambda: DolevCliqueListing(),
        ):
            result = factory().run(graph, seed=23)
            accounting = account_information(result, graph)
            assert accounting.rivin_holds
            assert accounting.respects_floor

    def test_closed_form_floor_below_measured_rounds(self):
        graph = gnp_random_graph(32, 0.5, seed=29)
        floor = theorem3_round_lower_bound(graph.num_nodes)
        for factory in (lambda: DolevCliqueListing(), lambda: NaiveTwoHopListing()):
            result = factory().run(graph, seed=29)
            assert result.rounds >= floor


class TestReportingPipeline:
    def test_table1_report_builds_from_measured_runs(self):
        graph = gnp_random_graph(30, 0.5, seed=31)
        listing = TriangleListing(repetitions=1, epsilon=0.5).run(graph, seed=31)
        naive = NaiveTwoHopListing().run(graph, seed=31)
        dolev = DolevCliqueListing().run(graph, seed=31)
        text = render_table1(
            graph.num_nodes,
            measured={
                "theorem2-listing-congest": listing.rounds,
                "naive-two-hop": naive.rounds,
                "dolev-listing-clique": dolev.rounds,
            },
        )
        assert str(listing.rounds) in text
        assert str(dolev.rounds) in text

    def test_predictions_available_for_every_row(self):
        predictions = predicted_round_complexities(30)
        assert len(predictions) >= 8

    def test_finding_and_listing_consistent_on_same_instance(self):
        graph = gnp_random_graph(28, 0.4, seed=37)
        assert count_triangles(graph) > 0
        finding = TriangleFinding(repetitions=2, epsilon=1 / 3).run(graph, seed=37)
        listing = TriangleListing(repetitions=2, epsilon=0.5).run(graph, seed=37)
        assert finding.found_any()
        assert finding.triangles_found() <= set(listing.triangles_found()) | finding.triangles_found()
        assert listing.rounds >= 0 and finding.rounds >= 0
