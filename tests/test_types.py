"""Tests for the fundamental value types."""

import pytest

from repro.types import (
    edges_of_triangles,
    make_edge,
    make_triangle,
    triangle_edges,
)


class TestMakeEdge:
    def test_canonical_order(self):
        assert make_edge(3, 1) == (1, 3)
        assert make_edge(1, 3) == (1, 3)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            make_edge(2, 2)


class TestMakeTriangle:
    def test_canonical_order(self):
        assert make_triangle(5, 1, 3) == (1, 3, 5)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            make_triangle(1, 1, 2)
        with pytest.raises(ValueError):
            make_triangle(1, 2, 2)
        with pytest.raises(ValueError):
            make_triangle(3, 2, 3)


class TestTriangleEdges:
    def test_three_edges(self):
        assert triangle_edges((1, 3, 5)) == ((1, 3), (1, 5), (3, 5))

    def test_edges_of_triangles_union(self):
        cover = edges_of_triangles([(0, 1, 2), (1, 2, 3)])
        assert cover == {(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)}

    def test_edges_of_triangles_empty(self):
        assert edges_of_triangles([]) == set()


class TestPackageSurface:
    def test_version_exposed(self):
        import repro

        assert repro.__version__
        assert isinstance(repro.__version__, str)

    def test_error_hierarchy(self):
        import repro

        assert issubclass(repro.GraphError, repro.ReproError)
        assert issubclass(repro.BandwidthExceededError, repro.SimulationError)
        assert issubclass(repro.RoundLimitExceededError, repro.SimulationError)
        assert issubclass(repro.SimulationError, repro.ReproError)
