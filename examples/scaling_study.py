#!/usr/bin/env python3
"""Scaling study: measured round complexity vs the paper's bounds.

Sweeps the network size, runs the naive baseline, the Theorem-1 finder, one
Theorem-2 listing pass and the Dolev et al. clique algorithm on each size,
fits growth exponents, and prints a compact comparison against the
asymptotic predictions of Table 1.

This is the script version of the `benchmarks/` scaling experiments, meant
for interactive exploration; pass a different maximum size or density on the
command line, e.g.::

    python examples/scaling_study.py --max-nodes 160 --probability 0.4
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import fit_power_law, render_table
from repro.core import (
    DolevCliqueListing,
    NaiveTwoHopListing,
    TriangleFinding,
    TriangleListing,
    finding_epsilon_asymptotic,
    listing_epsilon_asymptotic,
)
from repro.graphs import gnp_random_graph


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-nodes", type=int, default=120,
                        help="largest network size in the sweep (default 120)")
    parser.add_argument("--probability", type=float, default=0.5,
                        help="edge probability of the G(n, p) workloads (default 0.5)")
    parser.add_argument("--points", type=int, default=5,
                        help="number of sweep points (default 5)")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    smallest = max(24, args.max_nodes // args.points)
    sizes = sorted({smallest + i * (args.max_nodes - smallest) // (args.points - 1)
                    for i in range(args.points)})

    rows = []
    series = {"naive": [], "finding": [], "listing": [], "clique": []}
    for num_nodes in sizes:
        graph = gnp_random_graph(num_nodes, args.probability, seed=7000 + num_nodes)
        naive = NaiveTwoHopListing().run(graph, seed=1).rounds
        finding = TriangleFinding(repetitions=1, epsilon=finding_epsilon_asymptotic()).run(
            graph, seed=1).rounds
        listing = TriangleListing(repetitions=1, epsilon=listing_epsilon_asymptotic()).run(
            graph, seed=1).rounds
        clique = DolevCliqueListing().run(graph, seed=1).rounds
        series["naive"].append(naive)
        series["finding"].append(finding)
        series["listing"].append(listing)
        series["clique"].append(clique)
        rows.append([str(num_nodes), str(naive), str(finding), str(listing), str(clique)])
        print(f"  measured n={num_nodes}: naive={naive} finding={finding} "
              f"listing={listing} clique={clique}")

    print()
    print(render_table(
        ["n", "naive (d_max)", "Thm 1 finding", "Thm 2 listing (1 pass)", "Dolev clique"],
        rows,
    ))

    print("\nFitted growth exponents (theory in parentheses):")
    expectations = {
        "naive": "1.00",
        "finding": "0.67 + log factors",
        "listing": "0.75 + log factors",
        "clique": "0.33 + log factors",
    }
    for name, values in series.items():
        fit = fit_power_law([float(n) for n in sizes], [float(v) for v in values])
        print(f"  {name:<8} {fit.exponent:5.2f}   (theory: {expectations[name]})")

    print("\nNote: at simulator-scale n the CONGEST algorithms are still in their"
          "\npre-asymptotic regime (the landmark set of A3 is tiny), so their fitted"
          "\nexponents sit between the naive baseline's 1.0 and the asymptotic value;"
          "\nthe ordering and the baseline/clique exponents already match the theory.")


if __name__ == "__main__":
    main()
