#!/usr/bin/env python3
"""Scaling study: measured round complexity vs the paper's bounds.

Sweeps the network size, runs the naive baseline, the Theorem-1 finder, one
Theorem-2 listing pass and the Dolev et al. clique algorithm on each size,
fits growth exponents, and prints a compact comparison against the
asymptotic predictions of Table 1.

This is the script version of the `benchmarks/` scaling experiments, meant
for interactive exploration; pass a different maximum size or density on the
command line, e.g.::

    python examples/scaling_study.py --max-nodes 160 --probability 0.4
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import SweepRunner, fit_power_law, render_table
from repro.api import AlgorithmSpec, RunSpec, WorkloadSpec, run_specs_to_cells
from repro.core import finding_epsilon_asymptotic, listing_epsilon_asymptotic


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-nodes", type=int, default=120,
                        help="largest network size in the sweep (default 120)")
    parser.add_argument("--probability", type=float, default=0.5,
                        help="edge probability of the G(n, p) workloads (default 0.5)")
    parser.add_argument("--points", type=int, default=5,
                        help="number of sweep points (default 5)")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    smallest = max(24, args.max_nodes // args.points)
    sizes = sorted({smallest + i * (args.max_nodes - smallest) // (args.points - 1)
                    for i in range(args.points)})

    # One declarative run spec per (algorithm, size) cell; the registry
    # resolves the names to the same constructors the hand-wired loop used.
    algorithms = {
        "naive": AlgorithmSpec("naive-two-hop"),
        "finding": AlgorithmSpec(
            "theorem1-finding",
            {"repetitions": 1, "epsilon": finding_epsilon_asymptotic()},
        ),
        "listing": AlgorithmSpec(
            "theorem2-listing",
            {"repetitions": 1, "epsilon": listing_epsilon_asymptotic()},
        ),
        "clique": AlgorithmSpec("dolev-clique-listing"),
    }
    runs = [
        RunSpec(
            algorithm=spec,
            workload=WorkloadSpec(
                "gnp",
                {
                    "num_nodes": num_nodes,
                    "edge_probability": args.probability,
                    "seed": 7000 + num_nodes,  # pinned: same graph per size
                },
            ),
            seed=1,
            experiment="scaling-study",
        )
        for num_nodes in sizes
        for spec in algorithms.values()
    ]
    rows = []
    series = {name: [] for name in algorithms}
    names = list(algorithms)
    # Stream records in cell order so each size prints as it completes
    # (this script is for interactive exploration).
    stream = SweepRunner().iter_cells(run_specs_to_cells(runs))
    for num_nodes in sizes:
        cell_records = [next(stream) for _ in names]
        measured = dict(zip(names, (record.rounds for record in cell_records)))
        for name in names:
            series[name].append(measured[name])
        rows.append([str(num_nodes)] + [str(measured[name]) for name in names])
        print(f"  measured n={num_nodes}: naive={measured['naive']} "
              f"finding={measured['finding']} listing={measured['listing']} "
              f"clique={measured['clique']}")

    print()
    print(render_table(
        ["n", "naive (d_max)", "Thm 1 finding", "Thm 2 listing (1 pass)", "Dolev clique"],
        rows,
    ))

    print("\nFitted growth exponents (theory in parentheses):")
    expectations = {
        "naive": "1.00",
        "finding": "0.67 + log factors",
        "listing": "0.75 + log factors",
        "clique": "0.33 + log factors",
    }
    for name, values in series.items():
        fit = fit_power_law([float(n) for n in sizes], [float(v) for v in values])
        print(f"  {name:<8} {fit.exponent:5.2f}   (theory: {expectations[name]})")

    print("\nNote: at simulator-scale n the CONGEST algorithms are still in their"
          "\npre-asymptotic regime (the landmark set of A3 is tiny), so their fitted"
          "\nexponents sit between the naive baseline's 1.0 and the asymptotic value;"
          "\nthe ordering and the baseline/clique exponents already match the theory.")


if __name__ == "__main__":
    main()
