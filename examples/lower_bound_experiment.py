#!/usr/bin/env python3
"""The Theorem-3 information-theoretic accounting, run on real executions.

Theorem 3 argues: on G(n, 1/2), the node w(T) that outputs the most
triangles must cover Ω(n^{4/3}) edges with its output (Lemma 4 + Lemma 5),
hence must have received that many bits, hence Ω(n^{1/3}/log n) rounds are
needed — even in the congested clique.  Proposition 5 strengthens the floor
to Ω(n/log n) when every node must output its *own* triangles.

This example measures every quantity in that chain for three different
listing algorithms on the same G(n, 1/2) instance and prints them side by
side with the floors.

Run with::

    python examples/lower_bound_experiment.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (
    DolevCliqueListing,
    NaiveTwoHopListing,
    TriangleListing,
    account_information,
    expected_triangles_gnp_half,
    listing_epsilon_asymptotic,
    proposition5_round_lower_bound,
    theorem3_round_lower_bound,
)
from repro.graphs import count_triangles, gnp_random_graph


def main() -> None:
    num_nodes = 64
    graph = gnp_random_graph(num_nodes, 0.5, seed=99)
    print(f"Input: G(n={num_nodes}, 1/2) — {graph.num_edges} edges, "
          f"{count_triangles(graph)} triangles "
          f"(expectation {expected_triangles_gnp_half(num_nodes):.0f})\n")

    algorithms = [
        ("Theorem 2 listing (1 pass)", TriangleListing(repetitions=1, epsilon=listing_epsilon_asymptotic())),
        ("Dolev et al. clique listing", DolevCliqueListing()),
        ("naive 2-hop (local listing)", NaiveTwoHopListing()),
    ]

    for name, algorithm in algorithms:
        result = algorithm.run(graph, seed=1)
        accounting = account_information(result, graph)
        print(f"=== {name} ===")
        print(accounting.summary())
        print()

    print("Closed-form floors with the paper's explicit constants:")
    print(f"  Theorem 3 (any listing):      {theorem3_round_lower_bound(num_nodes):.2f} rounds")
    print(f"  Proposition 5 (local listing): {proposition5_round_lower_bound(num_nodes):.2f} rounds")
    print("\n(At simulator-scale n the explicit constants make the closed-form"
          "\nfloors small; the per-run accounting above is the informative check:"
          "\nevery execution must — and does — sit above its own floor.)")


if __name__ == "__main__":
    main()
