#!/usr/bin/env python3
"""Quickstart: find and list triangles of a random network in the CONGEST model.

Run with::

    python examples/quickstart.py

The script declares both experiments as :mod:`repro.api` run specs — the
registry-resolved, JSON-serializable front door — runs them, and prints the
measured round complexities next to the closed-form bounds.  Each spec is
also shown as the JSON document you could save and replay with the CLI::

    python -m repro run --spec finding.json
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import AlgorithmSpec, RunSpec, WorkloadSpec
from repro.core import (
    finding_epsilon_asymptotic,
    listing_epsilon_asymptotic,
    theorem1_round_bound,
    theorem2_round_bound,
)
from repro.graphs import count_triangles


def main() -> None:
    num_nodes = 64
    edge_probability = 0.4
    seed = 7

    workload = WorkloadSpec(
        "gnp", {"num_nodes": num_nodes, "edge_probability": edge_probability}
    )
    print(f"Workload: G(n={num_nodes}, p={edge_probability}), seed={seed}")
    graph = workload.build(seed=seed)
    ground_truth = count_triangles(graph)
    print(f"  {graph.num_edges} edges, {ground_truth} triangles, d_max = {graph.max_degree()}\n")

    finding_spec = RunSpec(
        algorithm=AlgorithmSpec(
            "theorem1-finding",
            {"repetitions": 1, "epsilon": finding_epsilon_asymptotic()},
        ),
        workload=workload,
        seed=seed,
        experiment="quickstart-finding",
    )
    print("Triangle finding (Theorem 1, one repetition):")
    print("  spec: " + finding_spec.to_json())
    finding_result = finding_spec.run_raw()
    finding_result.check_soundness(graph)
    some_triangle = next(iter(finding_result.triangles_found()), None)
    print(f"  found a triangle: {some_triangle}")
    print(f"  measured rounds:  {finding_result.rounds}")
    print(f"  reference bound:  n^(2/3) (log n)^(2/3) = {theorem1_round_bound(num_nodes):.0f}\n")

    listing_spec = RunSpec(
        algorithm=AlgorithmSpec(
            "theorem2-listing", {"epsilon": listing_epsilon_asymptotic()}
        ),
        workload=workload,
        seed=seed,
        experiment="quickstart-listing",
    )
    print("Triangle listing (Theorem 2, ceil(log2 n) repetitions):")
    print("  spec: " + listing_spec.to_json())
    record = listing_spec.run()  # verified ExperimentRecord, ready for JSONL
    print(f"  distinct triangles listed: recall = {record.recall:.3f} "
          f"(sound = {record.sound})")
    print(f"  measured rounds:           {record.rounds}")
    print(f"  reference bound:           n^(3/4) log n = {theorem2_round_bound(num_nodes):.0f}")

    if record.sound and record.recall == 1.0:
        print("\nAll triangles of the network were listed. ✓")
    elif not record.sound:
        print("\nUnsound output: a reported triple is not a triangle!")
    else:
        print("\nSome triangles were missed (increase repetitions to amplify).")


if __name__ == "__main__":
    main()
