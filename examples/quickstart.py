#!/usr/bin/env python3
"""Quickstart: find and list triangles of a random network in the CONGEST model.

Run with::

    python examples/quickstart.py

The script builds a random graph, runs the paper's Theorem-1 finding and
Theorem-2 listing algorithms on the CONGEST simulator, verifies the outputs
against the centralized ground truth, and prints the measured round
complexities next to the closed-form bounds.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (
    TriangleFinding,
    TriangleListing,
    finding_epsilon_asymptotic,
    listing_epsilon_asymptotic,
    theorem1_round_bound,
    theorem2_round_bound,
)
from repro.graphs import count_triangles, gnp_random_graph


def main() -> None:
    num_nodes = 64
    edge_probability = 0.4
    seed = 7

    print(f"Workload: G(n={num_nodes}, p={edge_probability}), seed={seed}")
    graph = gnp_random_graph(num_nodes, edge_probability, seed=seed)
    ground_truth = count_triangles(graph)
    print(f"  {graph.num_edges} edges, {ground_truth} triangles, d_max = {graph.max_degree()}\n")

    print("Triangle finding (Theorem 1, one repetition):")
    finding = TriangleFinding(repetitions=1, epsilon=finding_epsilon_asymptotic())
    finding_result = finding.run(graph, seed=seed)
    finding_result.check_soundness(graph)
    some_triangle = next(iter(finding_result.triangles_found()), None)
    print(f"  found a triangle: {some_triangle}")
    print(f"  measured rounds:  {finding_result.rounds}")
    print(f"  reference bound:  n^(2/3) (log n)^(2/3) = {theorem1_round_bound(num_nodes):.0f}\n")

    print("Triangle listing (Theorem 2, ceil(log2 n) repetitions):")
    listing = TriangleListing(epsilon=listing_epsilon_asymptotic())
    listing_result = listing.run(graph, seed=seed)
    listing_result.check_soundness(graph)
    recall = listing_result.listing_recall(graph)
    print(f"  distinct triangles listed: {len(listing_result.triangles_found())} / {ground_truth}")
    print(f"  recall:                    {recall:.3f}")
    print(f"  measured rounds:           {listing_result.rounds}")
    print(f"  reference bound:           n^(3/4) log n = {theorem2_round_bound(num_nodes):.0f}")

    if recall == 1.0:
        print("\nAll triangles of the network were listed. ✓")
    else:
        missed = listing_result.missed_triangles(graph)
        print(f"\nMissed {len(missed)} triangles (increase repetitions to amplify).")


if __name__ == "__main__":
    main()
