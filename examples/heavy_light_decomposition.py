#!/usr/bin/env python3
"""Visualising the ε-heavy / light decomposition that drives the algorithms.

The paper's upper bounds rest on one structural idea: split the triangles of
the network into the ε-heavy ones (some edge lies in at least n^ε triangles)
and the rest, attack the heavy ones with hashing (Algorithm A2) and the light
ones with the ∆(X) landmark filter (Algorithm A3), and choose ε to balance
the two costs.

This example builds a workload with both kinds of triangles (a union of
cliques of very different sizes plus a sparse random background), shows how
the decomposition shifts as ε varies, and runs A2 and A3 separately to show
which component is responsible for which triangles.

Run with::

    python examples/heavy_light_decomposition.py
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import recall_by_heaviness
from repro.core import HeavyHashingLister, LightTrianglesLister
from repro.graphs import count_triangles, gnp_random_graph, union_of_cliques


def build_workload(seed: int = 3):
    """A 12-clique, two 5-cliques and a sparse background on 70 nodes."""
    cliques = union_of_cliques([12, 5, 5])
    graph = gnp_random_graph(70, 0.06, seed=seed)
    for u, v in cliques.edges():
        graph.add_edge(u, v)
    return graph


def main() -> None:
    graph = build_workload()
    total = count_triangles(graph)
    print(f"Workload: n={graph.num_nodes}, m={graph.num_edges}, triangles={total}\n")

    print("Heavy/light split as a function of epsilon (threshold = n^epsilon):")
    print("  epsilon  threshold  heavy  light")
    from repro.graphs import heavy_triangles, light_triangles

    for epsilon in (0.2, 0.35, 0.5, 0.65, 0.8):
        threshold = graph.num_nodes ** epsilon
        heavy = len(heavy_triangles(graph, epsilon))
        light = len(light_triangles(graph, epsilon))
        print(f"  {epsilon:>7.2f}  {threshold:>9.1f}  {heavy:>5}  {light:>5}")

    epsilon = 0.5
    print(f"\nRunning the two component algorithms at epsilon = {epsilon}:")
    heavy_run = HeavyHashingLister(epsilon=epsilon).run(graph, seed=11)
    light_run = LightTrianglesLister(epsilon=epsilon).run(graph, seed=11)
    heavy_split = recall_by_heaviness(heavy_run, graph, epsilon)
    light_split = recall_by_heaviness(light_run, graph, epsilon)

    print(f"  A2 (heavy machinery): {heavy_run.rounds} rounds, "
          f"recall on heavy triangles = {heavy_split['heavy']:.2f}, "
          f"on light = {heavy_split['light']:.2f}")
    print(f"  A3 (light machinery): {light_run.rounds} rounds, "
          f"recall on heavy triangles = {light_split['heavy']:.2f}, "
          f"on light = {light_split['light']:.2f}")

    union = heavy_run.triangles_found() | light_run.triangles_found()
    print(f"\n  union of one A2 pass and one A3 pass: {len(union)}/{total} triangles")
    print("  (Theorem 2 repeats the pair ceil(c log n) times to push the union to all of T(G).)")


if __name__ == "__main__":
    main()
