#!/usr/bin/env python3
"""Motif census of a synthetic social network (the paper's listing use case).

Triangle listing "can be seen as a special case of motif finding, which is a
popular problem in the context of network data analysis" (Section 1).  This
example builds a preferential-attachment network — a stand-in for a social
graph — lists all its triangles with the Theorem-2 algorithm, and derives the
per-node census statistics an analyst would actually consume: triangle
participation counts and clustering coefficients, computed from the
*distributed* output and cross-checked against the centralized oracle.

Run with::

    python examples/triangle_census.py
"""

from __future__ import annotations

import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import duplication_factor, verify_result
from repro.core import TriangleListing, listing_epsilon_asymptotic
from repro.graphs import (
    barabasi_albert_graph,
    clustering_coefficient,
    local_triangle_count,
)


def main() -> None:
    num_nodes = 80
    attachment = 4
    seed = 2024

    print(f"Synthetic social network: Barabási–Albert, n={num_nodes}, m0={attachment}")
    graph = barabasi_albert_graph(num_nodes, attachment, seed=seed)
    print(f"  {graph.num_edges} edges, d_max = {graph.max_degree()}\n")

    print("Running distributed triangle listing (Theorem 2)...")
    result = TriangleListing(epsilon=listing_epsilon_asymptotic()).run(graph, seed=seed)
    report = verify_result(result, graph)
    print(f"  {report.summary()}")
    print(f"  measured rounds: {result.rounds}")
    print(f"  duplication factor (nodes per reported triangle): {duplication_factor(result):.2f}\n")

    # Census from the distributed output: count, for every vertex, the
    # triangles it participates in (regardless of which node reported them).
    participation: Counter[int] = Counter()
    for triangle in result.triangles_found():
        for vertex in triangle:
            participation[vertex] += 1

    oracle = local_triangle_count(graph)
    mismatches = [v for v in graph.nodes() if participation.get(v, 0) != oracle[v]]
    print("Per-node triangle census (top 10 by participation):")
    print("  node  degree  triangles  clustering")
    for node, count in participation.most_common(10):
        coefficient = clustering_coefficient(graph, node)
        print(f"  {node:>4}  {graph.degree(node):>6}  {count:>9}  {coefficient:>10.3f}")

    if mismatches:
        print(f"\nWARNING: census disagrees with the oracle at {len(mismatches)} nodes")
    else:
        print("\nDistributed census matches the centralized oracle at every node. ✓")


if __name__ == "__main__":
    main()
