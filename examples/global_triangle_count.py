#!/usr/bin/env python3
"""Network-wide triangle counting with BFS-tree aggregation (extension).

The paper's problems only require *local* outputs (some node reports each
triangle).  A natural companion task — and the one the Censor-Hillel et al.
clique algorithm discussed in Table 1 actually solves — is computing the
total number of triangles of the network.  This example runs the
:class:`repro.core.TriangleCounting` extension: a 2-hop exchange, a BFS-tree
convergecast of the per-node counts, and a tree broadcast so every node
learns the global total, all with honest CONGEST round accounting.

Run with::

    python examples/global_triangle_count.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import TriangleCounting
from repro.graphs import count_triangles, lollipop_graph


def main() -> None:
    clique_size, tail_length = 14, 26
    graph = lollipop_graph(clique_size, tail_length)
    print(f"Lollipop network: a {clique_size}-clique with a {tail_length}-node tail")
    print(f"  n={graph.num_nodes}, m={graph.num_edges}, diameter ≈ {tail_length + 1}, "
          f"d_max={graph.max_degree()}\n")

    counting = TriangleCounting(root=0, disseminate=True)
    result = counting.run(graph, seed=1)

    print(result.summary())
    print(f"  centralized ground truth: {count_triangles(graph)} triangles")
    print(f"  per-node counts (clique members): "
          f"{sorted(set(result.per_node_counts[v] for v in range(clique_size)))}")
    print(f"  per-node counts (tail members):   "
          f"{sorted(set(result.per_node_counts[v] for v in range(clique_size, graph.num_nodes)))}")

    print("\nCost anatomy: the 2-hop exchange pays about d_max rounds, while the")
    print("BFS tree, convergecast and dissemination each pay about one round per")
    print("level of the tail — on this topology the diameter term dominates,")
    print("which is exactly why the paper's listing problems (that need no global")
    print("aggregation) can beat the O(D) barrier that global problems face.")


if __name__ == "__main__":
    main()
