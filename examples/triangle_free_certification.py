#!/usr/bin/env python3
"""Certifying triangle-freeness of a network (the paper's finding use case).

The introduction motivates triangle finding with a practical concern: "for
several graph problems faster algorithms are known over triangle-free
graphs ... the ability to efficiently check if the network is triangle-free
is essential when considering such algorithms in practice."

This example runs the Theorem-1 finding algorithm on two networks — one
bipartite (hence triangle-free) and one with a handful of planted triangles —
and shows how the one-sided output is interpreted: a reported triple is a
certificate that the network is *not* triangle-free; an empty output after
amplification certifies triangle-freeness with high probability.

Run with::

    python examples/triangle_free_certification.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import TriangleFinding, finding_epsilon_asymptotic
from repro.graphs import (
    count_triangles,
    planted_triangle_graph,
    triangle_free_bipartite,
)


def certify(name: str, graph, seed: int) -> None:
    print(f"Network {name!r}: n={graph.num_nodes}, m={graph.num_edges}, "
          f"actual triangles = {count_triangles(graph)}")
    finder = TriangleFinding(
        epsilon=finding_epsilon_asymptotic(), stop_on_success=True
    )
    result = finder.run(graph, seed=seed)
    result.check_soundness(graph)
    if result.found_any():
        witness = sorted(result.triangles_found())[0]
        print(f"  -> NOT triangle-free: witness triangle {witness} "
              f"(found in {result.rounds} rounds)")
    else:
        repetitions = result.parameters["repetitions"]
        print(f"  -> no triangle found after {repetitions} amplification passes "
              f"({result.rounds} rounds): triangle-free with high probability")
    print()


def main() -> None:
    num_nodes = 60

    bipartite = triangle_free_bipartite(num_nodes, 0.4, seed=5)
    certify("bipartite backbone", bipartite, seed=5)

    planted, triangles = planted_triangle_graph(
        num_nodes, 3, background_probability=0.35, seed=6
    )
    print(f"(planted triangles: {triangles})")
    certify("backbone with 3 planted triangles", planted, seed=6)

    print("Interpretation: any reported triple is a sound certificate of a\n"
          "triangle; an empty answer is correct with probability 1 - delta,\n"
          "amplified by repeating the (A1, A3) pass (Theorem 1).")


if __name__ == "__main__":
    main()
