"""Benchmark: direct-exchange fused kernels vs the per-node batched kernels.

The direct-exchange refactor removed the last O(n)-Python layers of a
batched phase: per-node ``InboxSlice``/``TypedInboxView`` construction, the
per-receiver consumption loops, the O(n) empty-inbox reset, and the
per-node local oracle calls of A2's step 3.  The ``pernode`` kernel keeps
the previous generation (columnar staging, per-node inbox views — what PR 3
shipped as "batched") precisely so this comparison stays honest over time.

The measured workload is the ISSUE's bar: one full Theorem-2 listing pass
(A2 ∘ A3) on dense ``G(600, 1/2)`` — a size at which the per-node layers
dominate and which the pre-direct-exchange kernels could barely sustain.
ε is pinned inside the analysis regime as in the wire-plane benchmark.

Both kernels must agree exactly — same cost, same per-phase rounds /
link-bit maxima / messages / bits, same per-node triangle outputs — before
the timing is considered meaningful.  The acceptance bar is a ≥2.5x
end-to-end speedup at full size.  Set ``DIRECT_EXCHANGE_QUICK=1`` (CI does)
for a reduced-size run with a relaxed bar.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import TriangleListing
from repro.graphs import gnp_random_graph

from _bench_utils import record_json, record_table, run_once

QUICK = os.environ.get("DIRECT_EXCHANGE_QUICK", "") not in ("", "0")
NUM_NODES = 240 if QUICK else 600
EDGE_PROBABILITY = 0.5
EPSILON = 0.6
SEED = 7
#: Required end-to-end speedup of the direct-exchange kernels over the
#: per-node batched kernels.
REQUIRED_SPEEDUP = 1.5 if QUICK else 2.5


def test_direct_exchange_speedup(benchmark):
    """Theorem-2 listing: direct exchange must beat the pernode kernels."""
    graph = gnp_random_graph(NUM_NODES, EDGE_PROBABILITY, seed=42)
    graph.csr()  # both kernels share the prebuilt snapshot

    def compare():
        timings = {}
        results = {}
        for kernel in ("batched", "pernode"):
            algorithm = TriangleListing(
                repetitions=1, epsilon=EPSILON, kernel=kernel
            )
            start = time.perf_counter()
            results[kernel] = algorithm.run(graph, seed=SEED)
            timings[kernel] = time.perf_counter() - start
        return timings, results

    timings, results = run_once(benchmark, compare)
    batched, pernode = results["batched"], results["pernode"]

    # The physics must be identical before the timing means anything.
    assert batched.cost == pernode.cost
    batched_phases = [
        (phase.name, phase.rounds, phase.max_link_bits, phase.bits, phase.messages)
        for phase in batched.metrics.phases
    ]
    pernode_phases = [
        (phase.name, phase.rounds, phase.max_link_bits, phase.bits, phase.messages)
        for phase in pernode.metrics.phases
    ]
    assert batched_phases == pernode_phases
    for node in range(NUM_NODES):
        assert np.array_equal(
            batched.output.node_keys(node), pernode.output.node_keys(node)
        )

    speedup = timings["pernode"] / timings["batched"]
    triangles = int(batched.output.union_keys().shape[0])
    table = "\n".join(
        [
            f"direct-exchange benchmark (n={NUM_NODES}, p={EDGE_PROBABILITY}, "
            f"eps={EPSILON}, quick={QUICK})",
            f"  rounds (both kernels):  {batched.cost.rounds}",
            f"  messages per run:       {batched.cost.messages}",
            f"  triangles listed:       {triangles}",
            f"  pernode kernels:        {timings['pernode']:.2f} s",
            f"  direct exchange:        {timings['batched']:.2f} s",
            f"  speedup:                {speedup:.2f}x "
            f"(required ≥{REQUIRED_SPEEDUP}x)",
        ]
    )
    record_table("direct_exchange", table)
    record_json(
        "direct_exchange",
        {
            "benchmark": "direct_exchange",
            "quick": QUICK,
            "num_nodes": NUM_NODES,
            "edge_probability": EDGE_PROBABILITY,
            "epsilon": EPSILON,
            "seed": SEED,
            "rounds": batched.cost.rounds,
            "messages": batched.cost.messages,
            "bits": batched.cost.bits,
            "triangles": triangles,
            "pernode_seconds": timings["pernode"],
            "batched_seconds": timings["batched"],
            "speedup": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    assert speedup >= REQUIRED_SPEEDUP, table
