"""Benchmark: chaos session — byte-identity under deterministic faults.

The robustness contract of the experiment service is not "it usually
survives" but "a faulted session produces *exactly* the store a serial
run would".  This benchmark runs the full seeded chaos session from
:mod:`repro.service.chaos` — a three-sweep fleet session with the
standard recoverable-fault mix armed (worker crashes, stalls, dropped
and corrupted frames, expired leases, injected ENOSPC on the store) —
and demands:

* every fleet store is byte-identical to its serial reference,
* at least five distinct fault points actually fired (the injections
  were live, not vacuously passed),
* no recoverable fault quarantined a cell,
* the poison phase quarantines its permanently failing cell after
  exactly K attempts while every healthy cell completes.

A fault-free control session runs afterwards as the baseline: same
fleet, no plane armed, zero fires.  The recorded overhead ratio
(chaos wall-clock / control wall-clock) tracks how much injected
failure the recovery machinery absorbs without giving up throughput.

The seed is pinned to the same value as ``tests/service/test_chaos.py``
and the CI ``chaos-smoke`` job, so a regression reproduces identically
everywhere.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.service.chaos import run_chaos_session

from _bench_utils import record_json, record_table, run_once

QUICK = os.environ.get("SERVICE_QUICK", "") not in ("", "0")
#: Must match tests/service/test_chaos.py::PINNED_SEED and the CI job.
PINNED_SEED = 7
WORKERS = 2
#: The acceptance bar on injection coverage: distinct points fired.
REQUIRED_DISTINCT_POINTS = 5


def test_chaos_session_byte_identity(benchmark):
    """Seeded chaos session: identical stores, live faults, exact-K poison."""

    def session():
        with tempfile.TemporaryDirectory(prefix="bench-chaos-") as tmp:
            tmp_path = Path(tmp)
            chaos = run_chaos_session(
                tmp_path / "chaos", seed=PINNED_SEED, workers=WORKERS
            )
            control = run_chaos_session(
                tmp_path / "control", workers=WORKERS, control=True
            )
        return chaos, control

    chaos, control = run_once(benchmark, session)

    overhead = (
        chaos["elapsed_seconds"] / control["elapsed_seconds"]
        if control["elapsed_seconds"] > 0
        else float("inf")
    )
    points = ", ".join(chaos["fault_points_fired"])
    poison = chaos["poison"]
    table = "\n".join(
        [
            f"chaos benchmark (seed={PINNED_SEED}, workers={WORKERS}, "
            f"{len(chaos['sweeps'])} sweeps, quick={QUICK})",
            f"  chaos session:   {chaos['elapsed_seconds']:.2f} s, "
            f"{chaos['fault_fires']} faults fired across "
            f"{len(chaos['fault_points_fired'])} points ({points})",
            f"  control session: {control['elapsed_seconds']:.2f} s, "
            f"{control['fault_fires']} faults fired",
            f"  overhead:        {overhead:.2f}x wall-clock under chaos",
            f"  stores:          {len(chaos['sweeps'])} byte-identical "
            f"to serial, {chaos['quarantined']} quarantined, "
            f"{chaos['worker_restarts']} worker restarts",
            f"  poison phase:    cell {poison['cell']} quarantined after "
            f"{poison['observed_attempts']} attempts, "
            f"{poison['cells_done']} healthy cells done",
        ]
    )
    record_table("chaos", table)
    record_json(
        "chaos",
        {
            "benchmark": "chaos",
            "quick": QUICK,
            "seed": PINNED_SEED,
            "workers": WORKERS,
            "sweeps": len(chaos["sweeps"]),
            "chaos_seconds": chaos["elapsed_seconds"],
            "control_seconds": control["elapsed_seconds"],
            "overhead": overhead,
            "fault_fires": chaos["fault_fires"],
            "fault_points_fired": chaos["fault_points_fired"],
            "quarantined": chaos["quarantined"],
            "worker_restarts": chaos["worker_restarts"],
            "poison_attempts": poison["observed_attempts"],
            "poison_cells_done": poison["cells_done"],
            "identical": chaos["identical"],
        },
    )

    assert chaos["failures"] == [], chaos["failures"]
    assert chaos["ok"] and chaos["identical"], table
    assert (
        len(chaos["fault_points_fired"]) >= REQUIRED_DISTINCT_POINTS
    ), table
    assert chaos["quarantined"] == 0, table
    assert poison["observed_attempts"] == poison["attempts"], table
    assert control["ok"] and control["fault_fires"] == 0, table
