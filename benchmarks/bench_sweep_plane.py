"""Benchmark: zero-copy shared-memory sweep plane vs pickled workloads.

The sweep scheduler (:mod:`repro.analysis.experiments`) grew a second
workload transport: instead of every worker process rebuilding each
workload graph — and recomputing its edge-support and triangle oracle —
from a pickled ``(factory, seed)`` pair, the parent materialises each
distinct workload *once* into a POSIX shared-memory segment (oracle
included) and ships only a tiny handle.  Workers attach read-only,
zero-copy.

This benchmark times the same logical (probes × workload seeds) grid on
``G(n, sqrt(n)/n)`` — the paper's sparse regime — over three transports:

* ``factory_pickle`` — today's default cells: a generator factory per
  cell, every worker rebuilds graph + oracle per distinct workload,
* ``prebuilt_pickle`` — the whole warmed graph pickled into every cell
  (what naively avoiding the rebuild costs in transport bytes),
* ``shm`` — prebuilt cells on the shared-memory plane: one segment per
  workload, handle-sized cells, attach instead of rebuild.

The measured "algorithm" is a near-zero-cost probe that reads the
workload's triangle oracle, so the timings isolate workload setup and
transport — the costs the plane exists to remove; record byte-identity
across serial/pickle/shm is asserted before any timing counts.  Workload
materialisation is *inside* every timed region (workers pay it per
worker on the factory path, the parent pays it once on the shm path).
Set ``SWEEP_PLANE_QUICK=1`` (CI does) for a reduced-size run with a
relaxed bar.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from dataclasses import dataclass
from functools import partial
from typing import FrozenSet, List

from repro.analysis.experiments import (
    PrebuiltGraphFactory,
    SweepCell,
    SweepRunner,
)
from repro.congest.metrics import AlgorithmCost
from repro.graphs import Graph, gnp_random_graph

from _bench_utils import record_json, record_table, run_once

QUICK = os.environ.get("SWEEP_PLANE_QUICK", "") not in ("", "0")
NUM_NODES = 1200 if QUICK else 4000
#: The paper's sparse regime: expected degree sqrt(n).
EDGE_PROBABILITY = math.sqrt(NUM_NODES) / NUM_NODES
WORKLOAD_SEEDS = (1, 2, 3, 4)
PROBE_VARIANTS = ("probe-support", "probe-census", "probe-degree")
WORKERS = 3
#: Required speedup of the shm plane over the factory-pickle default.
REQUIRED_SPEEDUP = 1.3 if QUICK else 2.0
#: The shm plane must ship (essentially) no graph bytes per cell...
MAX_SHM_BYTES_PER_CELL = 16 * 1024
#: ...whereas pickling the prebuilt workload ships megabytes per cell.
MIN_PREBUILT_BYTES_PER_CELL = 1024 * 1024 if not QUICK else 128 * 1024


@dataclass(frozen=True)
class _ProbeResult:
    """Duck-typed algorithm result: just enough for ``run_single``."""

    algorithm: str
    model: str
    cost: AlgorithmCost
    truncated: bool
    triangles: FrozenSet[tuple]

    def triangles_found(self) -> FrozenSet[tuple]:
        return self.triangles


@dataclass(frozen=True)
class ProbeAlgorithm:
    """Near-zero-cost sweep probe: report the workload's own oracle.

    Each variant derives a different deterministic cost vector from the
    oracle arrays, so the grid has distinguishable per-cell records while
    the only real work per cell is *reading* the workload — which is
    exactly what the bench wants to time the provisioning of.
    """

    variant: str

    def run(self, graph: Graph, seed: int) -> _ProbeResult:
        csr = graph.csr()
        support = csr.edge_support()
        triangles = frozenset(map(tuple, csr.triangles().tolist()))
        scale = 1 + PROBE_VARIANTS.index(self.variant)
        cost = AlgorithmCost(
            rounds=scale * (int(support.max()) if support.size else 0),
            messages=scale * graph.num_edges,
            bits=scale * len(triangles),
            max_bits_received=scale * graph.max_degree(),
        )
        return _ProbeResult(
            algorithm=self.variant,
            model="CONGEST",
            cost=cost,
            truncated=False,
            triangles=triangles,
        )


def _factory_cells() -> List[SweepCell]:
    """The status-quo grid: generator factories, workers rebuild."""
    return [
        SweepCell(
            experiment="sweep-plane",
            algorithm_factory=partial(ProbeAlgorithm, variant),
            graph_factory=partial(gnp_random_graph, NUM_NODES, EDGE_PROBABILITY),
            seed=seed,
        )
        for seed in WORKLOAD_SEEDS
        for variant in PROBE_VARIANTS
    ]


def _prebuilt_cells() -> List[SweepCell]:
    """The same grid with every workload built and warmed up front.

    Building is part of the measured cost of this path — it is what the
    factory path makes every *worker* repeat — so this runs inside the
    timed region.
    """
    cells = []
    for seed in WORKLOAD_SEEDS:
        graph = gnp_random_graph(NUM_NODES, EDGE_PROBABILITY, seed)
        graph.csr().edge_support()
        graph.csr().triangles()
        for variant in PROBE_VARIANTS:
            cells.append(
                SweepCell(
                    experiment="sweep-plane",
                    algorithm_factory=partial(ProbeAlgorithm, variant),
                    graph_factory=PrebuiltGraphFactory(graph),
                    seed=seed,
                )
            )
    return cells


def _warmup_cells() -> List[SweepCell]:
    """A tiny throwaway grid that spins the worker pool up before timing.

    Deliberately a *different* workload from the measured grid, so the
    warmup cannot pre-populate worker-side workload caches with the
    graphs the factory path is being timed on rebuilding.
    """
    return [
        SweepCell(
            experiment="sweep-plane-warmup",
            algorithm_factory=partial(ProbeAlgorithm, PROBE_VARIANTS[0]),
            graph_factory=partial(gnp_random_graph, 60, 0.3),
            seed=seed,
        )
        for seed in (101, 102)
    ]


def _record_keys(records) -> List[bytes]:
    return [pickle.dumps(record, protocol=4) for record in records]


def test_sweep_plane_speedup(benchmark):
    """shm plane ≥2x over factory-pickle, at handle-sized cell payloads."""

    def compare():
        timings = {}
        planes = {}
        keys = {}
        # The parallel paths run before the serial reference: worker pools
        # fork from this process, so running the reference first would
        # hand every worker a pre-warmed workload cache and erase exactly
        # the rebuild cost the factory path is being timed on.
        with SweepRunner(max_workers=WORKERS, plane="pickle") as runner:
            runner.run_cells(_warmup_cells())
            start = time.perf_counter()
            records = runner.run_cells(_factory_cells())
            timings["factory_pickle"] = time.perf_counter() - start
            planes["factory_pickle"] = dict(runner.last_plane)
            keys["factory_pickle"] = _record_keys(records)

        with SweepRunner(max_workers=WORKERS, plane="pickle") as runner:
            runner.run_cells(_warmup_cells())
            start = time.perf_counter()
            records = runner.run_cells(_prebuilt_cells())
            timings["prebuilt_pickle"] = time.perf_counter() - start
            planes["prebuilt_pickle"] = dict(runner.last_plane)
            keys["prebuilt_pickle"] = _record_keys(records)

        with SweepRunner(max_workers=WORKERS, plane="shm") as runner:
            runner.run_cells(_warmup_cells())
            start = time.perf_counter()
            records = runner.run_cells(_prebuilt_cells())
            timings["shm"] = time.perf_counter() - start
            planes["shm"] = dict(runner.last_plane)
            keys["shm"] = _record_keys(records)

        # -- byte-identity: every transport must agree with a serial run.
        reference = _record_keys(SweepRunner().run_cells(_factory_cells()))
        for path, path_keys in keys.items():
            assert path_keys == reference, f"{path} records diverge from serial"

        return timings, planes

    timings, planes = run_once(benchmark, compare)
    speedup = timings["factory_pickle"] / timings["shm"]
    shm_bytes = planes["shm"]["pickled_bytes_per_cell"]
    prebuilt_bytes = planes["prebuilt_pickle"]["pickled_bytes_per_cell"]

    table = "\n".join(
        [
            f"sweep-plane benchmark (n={NUM_NODES}, p=sqrt(n)/n, "
            f"{len(WORKLOAD_SEEDS)} workloads x {len(PROBE_VARIANTS)} probes, "
            f"workers={WORKERS}, quick={QUICK})",
            f"  factory-pickle sweep:   {timings['factory_pickle']:.2f} s "
            f"({planes['factory_pickle']['pickled_bytes_per_cell']:.0f} B/cell)",
            f"  prebuilt-pickle sweep:  {timings['prebuilt_pickle']:.2f} s "
            f"({prebuilt_bytes:.0f} B/cell)",
            f"  shm sweep:              {timings['shm']:.2f} s "
            f"({shm_bytes:.0f} B/cell, "
            f"{planes['shm']['workloads_shared']} segments)",
            f"  speedup:                {speedup:.2f}x (required ≥{REQUIRED_SPEEDUP}x)",
        ]
    )
    record_table("sweep_plane", table)
    record_json(
        "sweep_plane",
        {
            "benchmark": "sweep_plane",
            "quick": QUICK,
            "num_nodes": NUM_NODES,
            "edge_probability": EDGE_PROBABILITY,
            "workloads": len(WORKLOAD_SEEDS),
            "cells": len(WORKLOAD_SEEDS) * len(PROBE_VARIANTS),
            "workers": WORKERS,
            "factory_pickle_seconds": timings["factory_pickle"],
            "prebuilt_pickle_seconds": timings["prebuilt_pickle"],
            "shm_seconds": timings["shm"],
            "factory_pickle_bytes_per_cell": planes["factory_pickle"][
                "pickled_bytes_per_cell"
            ],
            "prebuilt_pickle_bytes_per_cell": prebuilt_bytes,
            "shm_bytes_per_cell": shm_bytes,
            "workloads_shared": planes["shm"]["workloads_shared"],
            "speedup": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    assert planes["shm"]["plane"] == "shm", planes["shm"]
    assert shm_bytes < MAX_SHM_BYTES_PER_CELL, table
    assert prebuilt_bytes > MIN_PREBUILT_BYTES_PER_CELL, table
    assert speedup >= REQUIRED_SPEEDUP, table
