"""Experiment T1-R1 .. T1-R5: reproduction of Table 1 of the paper.

Each benchmark runs one implemented row of Table 1 on a common ``G(n, 0.5)``
workload, records the measured round count, and the final benchmark renders
the full table (measured rounds next to the published asymptotic bounds).
The shape criteria asserted here are the qualitative claims the table makes:

* the Dolev et al. clique algorithm is the cheapest listing algorithm,
* triangle finding (Theorem 1) costs no more than listing (Theorem 2),
* every measured listing run sits above the Theorem-3 information floor,
* all algorithms are sound, and the listing algorithms achieve full recall
  on the workload.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table1, verify_result
from repro.core import (
    DolevCliqueListing,
    NaiveTwoHopListing,
    TriangleFinding,
    TriangleListing,
    account_information,
    finding_epsilon_asymptotic,
    listing_epsilon_asymptotic,
    proposition5_round_lower_bound,
    theorem3_round_lower_bound,
)
from repro.graphs import gnp_random_graph

from _bench_utils import record_json, record_table, run_once

#: Common workload for the Table-1 reproduction: a dense random graph, the
#: regime in which the naive baseline's d_max = Θ(n) cost hurts the most and
#: the lower-bound distribution G(n, 1/2) is matched exactly.
TABLE1_NODES = 96
TABLE1_SEED = 20170725  # PODC 2017 session date, purely a fixed seed
_measured_rounds: dict[str, int] = {}
_notes: dict[str, str] = {}


@pytest.fixture(scope="module")
def workload():
    return gnp_random_graph(TABLE1_NODES, 0.5, seed=TABLE1_SEED)


def test_table1_dolev_clique_listing(benchmark, workload):
    """T1-R1: Dolev et al. listing on the CONGEST clique."""
    result = run_once(benchmark, lambda: DolevCliqueListing().run(workload, seed=1))
    report = verify_result(result, workload)
    assert report.sound and report.solves_listing
    _measured_rounds["dolev-listing-clique"] = result.rounds
    _notes["dolev-listing-clique"] = "G(96, 0.5), full recall"


def test_table1_finding_congest(benchmark, workload):
    """T1-R2: Theorem 1 finding in the CONGEST model."""
    algorithm = TriangleFinding(
        repetitions=2, epsilon=finding_epsilon_asymptotic(), stop_on_success=False
    )
    result = run_once(benchmark, lambda: algorithm.run(workload, seed=2))
    report = verify_result(result, workload)
    assert report.sound and report.solves_finding
    _measured_rounds["theorem1-finding-congest"] = result.rounds
    _notes["theorem1-finding-congest"] = "G(96, 0.5), 2 repetitions"


def test_table1_listing_congest(benchmark, workload):
    """T1-R3: Theorem 2 listing in the CONGEST model."""
    algorithm = TriangleListing(epsilon=listing_epsilon_asymptotic())
    result = run_once(benchmark, lambda: algorithm.run(workload, seed=3))
    report = verify_result(result, workload)
    assert report.sound and report.solves_listing
    _measured_rounds["theorem2-listing-congest"] = result.rounds
    _notes["theorem2-listing-congest"] = "G(96, 0.5), ceil(log2 n) repetitions"


def test_table1_naive_baseline(benchmark, workload):
    """T1-R5: the folklore d_max baseline (also the Proposition-5 witness)."""
    result = run_once(benchmark, lambda: NaiveTwoHopListing().run(workload, seed=4))
    report = verify_result(result, workload)
    assert report.sound and report.solves_listing
    assert result.rounds == workload.max_degree()
    # Proposition 5: any local-listing algorithm needs Omega(n / log n)
    # rounds; the naive baseline's measured cost must respect the
    # constant-explicit floor.
    assert result.rounds >= proposition5_round_lower_bound(workload.num_nodes)
    _measured_rounds["naive-two-hop"] = result.rounds
    _notes["naive-two-hop"] = "G(96, 0.5), d_max rounds"


def test_table1_listing_lower_bound(benchmark, workload):
    """T1-R4: Theorem 3's floor, checked against every measured listing run."""

    def accounting_run():
        result = TriangleListing(repetitions=1, epsilon=listing_epsilon_asymptotic()).run(
            workload, seed=5
        )
        return result, account_information(result, workload)

    result, accounting = run_once(benchmark, accounting_run)
    assert accounting.rivin_holds
    assert accounting.respects_floor
    floor = theorem3_round_lower_bound(workload.num_nodes)
    for key in ("dolev-listing-clique", "theorem2-listing-congest", "naive-two-hop"):
        if key in _measured_rounds:
            assert _measured_rounds[key] >= floor
    _measured_rounds["theorem3-listing-lower"] = int(accounting.round_floor)
    _notes["theorem3-listing-lower"] = (
        f"per-run info floor on G(96, 0.5): {accounting.information_floor_bits:.0f} bits"
    )


def test_table1_render_and_shape(benchmark, workload):
    """Render the reproduced Table 1 and assert its qualitative orderings."""
    required = {
        "dolev-listing-clique",
        "theorem1-finding-congest",
        "theorem2-listing-congest",
        "theorem3-listing-lower",
    }
    if not required <= set(_measured_rounds):
        pytest.skip("requires the preceding Table-1 benchmarks in the same session")

    def render():
        return render_table1(workload.num_nodes, measured=_measured_rounds, notes=_notes)

    text = run_once(benchmark, render)
    record_table("table1", text)
    record_json(
        "table1",
        {
            "benchmark": "table1",
            "num_nodes": workload.num_nodes,
            "measured_rounds": dict(_measured_rounds),
            "notes": dict(_notes),
        },
    )
    # Qualitative shape of Table 1 on the measured rows:
    assert (
        _measured_rounds["dolev-listing-clique"]
        < _measured_rounds["theorem2-listing-congest"]
    ), "the clique algorithm must beat the CONGEST listing algorithm"
    assert (
        _measured_rounds["theorem1-finding-congest"]
        <= _measured_rounds["theorem2-listing-congest"]
    ), "finding must not cost more than listing"
    assert (
        _measured_rounds["theorem3-listing-lower"]
        <= _measured_rounds["dolev-listing-clique"]
    ), "the lower bound must sit below every achievable listing cost"
