"""Experiments S-A1, S-A2, S-A3: component-level round bounds (Propositions 1-3).

These are the cleanest quantitative checks the paper admits at simulator
scale: each component algorithm has an explicit, constant-carrying round
bound, and the simulator measures the exact number of CONGEST rounds, so we
can verify both the absolute bound and the scaling exponent in ``n``:

* Algorithm A1 ships at most ``4 n^{1-ε}`` identifiers per link  →  measured
  rounds ≤ ``4 n^{1-ε}`` and the fitted exponent is about ``1 - ε``,
* Algorithm A2 ships at most ``8 + 4n/⌊n^{ε/2}⌋`` edges per link →  measured
  rounds ≤ twice that (an edge is two identifiers), exponent about ``1-ε/2``,
* Algorithm A3 is bounded by ``c (n^{1-ε} + n^{(1+ε)/2} log n)`` (the paper's
  stopping rule); the measured cost must respect the Proposition-3 budget.

The per-heavy-triangle hit rates of A1/A2 on heavy-edge gadgets are also
recorded, as the empirical counterpart of the constant success probability
the propositions promise.
"""

from __future__ import annotations

import math

from repro.analysis import fit_power_law, render_scaling_table, render_table
from repro.core import (
    HeavyHashingLister,
    HeavySamplingFinder,
    LightTrianglesLister,
    a1_sample_cap,
    a2_edge_set_cap,
    a3_round_budget,
)
from repro.graphs import gnp_random_graph, heavy_edge_gadget, heavy_triangles

from _bench_utils import record_json, record_table, run_once

SIZES = [40, 64, 96, 128, 160]
EDGE_PROBABILITY = 0.5
EPSILON = 0.5


def _workload(num_nodes: int):
    return gnp_random_graph(num_nodes, EDGE_PROBABILITY, seed=3000 + num_nodes)


def test_a1_rounds_scaling(benchmark):
    """S-A1: A1's measured rounds vs the Proposition-1 cap ``4 n^{1-ε}``."""

    def sweep():
        return [
            HeavySamplingFinder(epsilon=EPSILON).run(_workload(n), seed=n).rounds
            for n in SIZES
        ]

    measured = run_once(benchmark, sweep)
    caps = [a1_sample_cap(n, EPSILON) for n in SIZES]
    fit = fit_power_law([float(n) for n in SIZES], [max(1.0, float(r)) for r in measured])
    record_table(
        "a1_scaling",
        render_scaling_table(
            f"S-A1: Algorithm A1 on G(n, {EDGE_PROBABILITY}), epsilon = {EPSILON}",
            SIZES,
            [float(r) for r in measured],
            caps,
            fit=fit,
            expected_exponent=1.0 - EPSILON,
        ),
    )
    record_json(
        "a1_scaling",
        {
            "benchmark": "a1_scaling",
            "sizes": SIZES,
            "epsilon": EPSILON,
            "measured_rounds": [float(r) for r in measured],
            "caps": caps,
            "fit_exponent": fit.exponent,
        },
    )
    for rounds, cap in zip(measured, caps):
        assert rounds <= math.ceil(cap) + 1
    # The exponent check allows generous noise (random sampling, small n)
    # around the predicted 1 - epsilon = 0.5.
    assert 0.2 <= fit.exponent <= 0.8


def test_a2_rounds_scaling(benchmark):
    """S-A2: A2's measured rounds vs the Proposition-2 cap ``2(8 + 4n/⌊n^{ε/2}⌋)``."""

    def sweep():
        return [
            HeavyHashingLister(epsilon=EPSILON).run(_workload(n), seed=n).rounds
            for n in SIZES
        ]

    measured = run_once(benchmark, sweep)
    caps = [2.0 * a2_edge_set_cap(n, EPSILON) for n in SIZES]
    fit = fit_power_law([float(n) for n in SIZES], [float(r) for r in measured])
    record_table(
        "a2_scaling",
        render_scaling_table(
            f"S-A2: Algorithm A2 on G(n, {EDGE_PROBABILITY}), epsilon = {EPSILON}",
            SIZES,
            [float(r) for r in measured],
            caps,
            fit=fit,
            expected_exponent=1.0 - EPSILON / 2.0,
        ),
    )
    record_json(
        "a2_scaling",
        {
            "benchmark": "a2_scaling",
            "sizes": SIZES,
            "epsilon": EPSILON,
            "measured_rounds": [float(r) for r in measured],
            "caps": caps,
            "fit_exponent": fit.exponent,
        },
    )
    for rounds, cap in zip(measured, caps):
        # +6 covers the constant-round hash-distribution step.
        assert rounds <= cap + 6
    assert 0.45 <= fit.exponent <= 1.0


def test_a3_rounds_within_budget(benchmark):
    """S-A3: A3's measured rounds vs the Proposition-3 budget."""

    def sweep():
        rows = []
        for n in SIZES:
            result = LightTrianglesLister(epsilon=EPSILON).run(_workload(n), seed=n)
            rows.append((result.rounds, result.truncated))
        return rows

    rows = run_once(benchmark, sweep)
    budgets = [float(a3_round_budget(n, EPSILON)) for n in SIZES]
    measured = [float(rounds) for rounds, _ in rows]
    fit = fit_power_law([float(n) for n in SIZES], measured)
    record_table(
        "a3_scaling",
        render_scaling_table(
            f"S-A3: Algorithm A3 on G(n, {EDGE_PROBABILITY}), epsilon = {EPSILON}",
            SIZES,
            measured,
            budgets,
            fit=fit,
            expected_exponent=(1.0 + EPSILON) / 2.0,
        ),
    )
    record_json(
        "a3_scaling",
        {
            "benchmark": "a3_scaling",
            "sizes": SIZES,
            "epsilon": EPSILON,
            "measured_rounds": measured,
            "budgets": budgets,
            "truncated": [bool(t) for _, t in rows],
            "fit_exponent": fit.exponent,
        },
    )
    for (rounds, truncated), budget in zip(rows, budgets):
        assert truncated or rounds <= budget


def test_a1_a2_hit_rates_on_heavy_gadget(benchmark):
    """Per-heavy-triangle success rates of A1 and A2 (Propositions 1-2)."""
    num_nodes = 48
    support = 24
    epsilon = math.log(12) / math.log(num_nodes)  # threshold 12 < support
    graph, _ = heavy_edge_gadget(num_nodes, support, seed=0)
    heavy = heavy_triangles(graph, epsilon)
    trials = 12

    def measure():
        a1_hits = 0
        a2_hits = 0
        for seed in range(trials):
            a1_found = HeavySamplingFinder(epsilon=epsilon).run(graph, seed=seed).found_any()
            a1_hits += 1 if a1_found else 0
            a2_found = HeavyHashingLister(epsilon=epsilon).run(graph, seed=seed).triangles_found()
            a2_hits += sum(1 for t in heavy if t in a2_found)
        return a1_hits / trials, a2_hits / (trials * len(heavy))

    a1_rate, a2_rate = run_once(benchmark, measure)
    record_table(
        "component_hit_rates",
        render_table(
            ["algorithm", "guarantee", "measured rate"],
            [
                ["A1 (finds some heavy triangle)", "Omega(1) per run", f"{a1_rate:.2f}"],
                ["A2 (lists each heavy triangle)", "Omega(1) per triangle per run", f"{a2_rate:.2f}"],
            ],
        ),
    )
    record_json(
        "component_hit_rates",
        {
            "benchmark": "component_hit_rates",
            "a1_rate": a1_rate,
            "a2_rate": a2_rate,
        },
    )
    assert a1_rate >= 0.5
    assert a2_rate >= 0.2
