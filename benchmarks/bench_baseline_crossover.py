"""Experiment ABL-BASE: sublinear listing vs the naive d_max baseline.

The introduction of the paper motivates the whole line of work with one
observation: aggregating 2-hop neighbourhoods costs ``Θ(d_max)`` rounds,
which is linear in ``n`` on dense graphs.  This benchmark measures both the
naive baseline and the Theorem-2 per-pass cost across a density sweep and a
size sweep, records the growth exponents, and asserts the qualitative
relationship that defines the contribution:

* the naive baseline's cost grows linearly with n on dense graphs
  (fitted exponent ≈ 1),
* the Theorem-2 per-pass cost grows with a smaller fitted exponent on the
  same sweep,
* extrapolating both fits predicts a crossover at a finite n — the paper's
  asymptotic claim expressed at measurement scale.  (At the small n a
  Python simulator reaches, the naive baseline's tiny constants still win in
  absolute terms; the *shape* comparison is the reproducible claim.)
"""

from __future__ import annotations

from repro.analysis import fit_power_law, render_table
from repro.core import NaiveTwoHopListing, TriangleListing, listing_epsilon_asymptotic
from repro.graphs import gnp_random_graph

from _bench_utils import record_json, record_table, run_once

SIZES = [40, 60, 80, 100, 120, 140]
EDGE_PROBABILITY = 0.5


def test_baseline_crossover_shape(benchmark):
    """ABL-BASE: growth exponents of naive vs Theorem-2 listing."""

    def sweep():
        rows = []
        for num_nodes in SIZES:
            graph = gnp_random_graph(num_nodes, EDGE_PROBABILITY, seed=5000 + num_nodes)
            naive = NaiveTwoHopListing().run(graph, seed=1)
            sublinear = TriangleListing(
                repetitions=1, epsilon=listing_epsilon_asymptotic()
            ).run(graph, seed=1)
            rows.append((num_nodes, naive.rounds, sublinear.rounds))
        return rows

    rows = run_once(benchmark, sweep)
    naive_fit = fit_power_law(
        [float(n) for n, _, _ in rows], [float(r) for _, r, _ in rows]
    )
    sublinear_fit = fit_power_law(
        [float(n) for n, _, _ in rows], [float(r) for _, _, r in rows]
    )
    record_table(
        "baseline_crossover",
        render_table(
            ["n", "naive d_max rounds", "Theorem 2 per-pass rounds"],
            [[str(n), str(naive), str(sub)] for n, naive, sub in rows],
        )
        + (
            f"\nnaive fitted exponent:     {naive_fit.exponent:.3f} (theory: 1.0)"
            f"\nTheorem-2 fitted exponent: {sublinear_fit.exponent:.3f} "
            f"(theory: 0.75 up to log factors; pre-asymptotic at these n)"
        ),
    )

    record_json(
        "baseline_crossover",
        {
            "benchmark": "baseline_crossover",
            "sizes": [n for n, _, _ in rows],
            "naive_rounds": [r for _, r, _ in rows],
            "theorem2_rounds": [r for _, _, r in rows],
            "naive_fit_exponent": naive_fit.exponent,
            "theorem2_fit_exponent": sublinear_fit.exponent,
        },
    )

    # The naive baseline grows essentially linearly on dense G(n, p).
    assert 0.85 <= naive_fit.exponent <= 1.15
    # The sublinear algorithm's exponent must not exceed the baseline's by a
    # meaningful margin at these sizes (pre-asymptotic constants are allowed,
    # a strictly worse growth rate is not).
    assert sublinear_fit.exponent <= naive_fit.exponent + 0.35


def test_density_sweep_naive_tracks_max_degree(benchmark):
    """The baseline's cost is d_max, so it scales linearly with density."""

    def sweep():
        rows = []
        for probability in (0.2, 0.4, 0.6, 0.8):
            graph = gnp_random_graph(100, probability, seed=int(probability * 100))
            naive = NaiveTwoHopListing().run(graph, seed=1)
            rows.append((probability, graph.max_degree(), naive.rounds))
        return rows

    rows = run_once(benchmark, sweep)
    record_table(
        "density_sweep",
        render_table(
            ["p", "d_max", "naive rounds"],
            [[f"{p:.1f}", str(dmax), str(rounds)] for p, dmax, rounds in rows],
        ),
    )
    record_json(
        "density_sweep",
        {
            "benchmark": "density_sweep",
            "probabilities": [p for p, _, _ in rows],
            "max_degrees": [d for _, d, _ in rows],
            "naive_rounds": [r for _, _, r in rows],
        },
    )
    for _, dmax, rounds in rows:
        assert rounds == dmax
    assert rows[-1][2] > rows[0][2]
