"""Profile a protocol run phase by phase (cProfile + per-phase wall clock).

Runs one seeded execution of the chosen protocol under ``cProfile``, while
also timing every simulator phase boundary (``run_phase`` /
``exchange_phase`` / Lenzen routing) so hot spots can be attributed to the
protocol step that caused them.  Writes the report to
``benchmarks/results/profile_<protocol>.txt`` and prints it.

Usage::

    python benchmarks/profile_phase.py --protocol theorem2 --nodes 300
    python benchmarks/profile_phase.py --protocol a2 --nodes 600 --top 40
    python benchmarks/profile_phase.py --protocol dolev --kernel pernode
    python benchmarks/profile_phase.py --protocol a3 --top-allocs 10

``--top-allocs N`` additionally snapshots tracemalloc at every phase
boundary and reports each phase's N largest allocation sites (by net bytes
allocated during the phase) — the tool that verified the arena actually
removed the plane's steady-state allocations.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.congest.routing import LenzenRouter
from repro.congest.simulator import CongestSimulator
from repro.core import (
    DolevCliqueListing,
    HeavyHashingLister,
    HeavySamplingFinder,
    LightTrianglesLister,
    TriangleFinding,
    TriangleListing,
)
from repro.graphs import gnp_random_graph

RESULTS_DIR = Path(__file__).resolve().parent / "results"

def _tuning(args) -> dict:
    return {
        "kernel": args.kernel,
        "backend": args.backend,
        "chunk_bytes": args.chunk_bytes,
    }


PROTOCOLS = {
    "a1": lambda args: HeavySamplingFinder(epsilon=args.epsilon, **_tuning(args)),
    "a2": lambda args: HeavyHashingLister(epsilon=args.epsilon, **_tuning(args)),
    "a3": lambda args: LightTrianglesLister(epsilon=args.epsilon, **_tuning(args)),
    "dolev": lambda args: DolevCliqueListing(**_tuning(args)),
    "theorem1": lambda args: TriangleFinding(
        repetitions=1, epsilon=args.epsilon, **_tuning(args)
    ),
    "theorem2": lambda args: TriangleListing(
        repetitions=1, epsilon=args.epsilon, **_tuning(args)
    ),
}


class _PhaseClock:
    """Accumulate wall-clock per phase name by wrapping the phase doors."""

    def __init__(self, trace_allocs: bool = False) -> None:
        self.totals: dict[str, float] = {}
        #: phase name -> {"file:line": net bytes allocated} (tracemalloc).
        self.alloc_sites: dict[str, dict[str, int]] = {}
        self._trace_allocs = trace_allocs
        self._last_snapshot = None
        self._last_mark = time.perf_counter()
        self._patches: list[tuple[type, str, object]] = []

    def _record(self, name: str) -> None:
        now = time.perf_counter()
        self.totals[name] = self.totals.get(name, 0.0) + (now - self._last_mark)
        if self._trace_allocs:
            snapshot = tracemalloc.take_snapshot()
            if self._last_snapshot is not None:
                bucket = self.alloc_sites.setdefault(name, {})
                for diff in snapshot.compare_to(self._last_snapshot, "lineno"):
                    if diff.size_diff <= 0:
                        continue
                    frame = diff.traceback[0]
                    site = f"{frame.filename}:{frame.lineno}"
                    bucket[site] = bucket.get(site, 0) + diff.size_diff
            self._last_snapshot = snapshot
        self._last_mark = time.perf_counter()

    def _wrap(self, owner: type, attribute: str) -> None:
        clock = self
        original = getattr(owner, attribute)

        def timed(self, name="phase", *args, **kwargs):
            result = original(self, name, *args, **kwargs)
            clock._record(name if isinstance(name, str) else "phase")
            return result

        self._patches.append((owner, attribute, original))
        setattr(owner, attribute, timed)

    def __enter__(self) -> "_PhaseClock":
        self._wrap(CongestSimulator, "run_phase")
        self._wrap(CongestSimulator, "exchange_phase")
        if self._trace_allocs:
            tracemalloc.start()
            self._last_snapshot = tracemalloc.take_snapshot()
        self._last_mark = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        for owner, attribute, original in self._patches:
            setattr(owner, attribute, original)
        # Whatever ran after the last phase (output collection, result
        # packaging) is attributed to a synthetic tail entry.
        self._record("<post-phase / result packaging>")
        if self._trace_allocs:
            tracemalloc.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--protocol", choices=sorted(PROTOCOLS), default="theorem2")
    parser.add_argument("--kernel", default="batched",
                        choices=("batched", "pernode", "reference"))
    parser.add_argument("--nodes", type=int, default=300)
    parser.add_argument("--probability", type=float, default=0.5)
    parser.add_argument("--epsilon", type=float, default=0.6)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--top", type=int, default=25,
                        help="cProfile rows to report (by cumulative time)")
    parser.add_argument("--backend", default="numpy", choices=("numpy", "numba"),
                        help="kernel backend for the hot inner loops")
    parser.add_argument("--chunk-bytes", type=int, default=None,
                        help="chunked-evaluation budget (bytes per block)")
    parser.add_argument("--top-allocs", type=int, default=0,
                        help="per-phase tracemalloc: report the N largest "
                             "allocation sites per phase (0 = off)")
    args = parser.parse_args(argv)

    graph = gnp_random_graph(args.nodes, args.probability, seed=42)
    graph.csr()
    algorithm = PROTOCOLS[args.protocol](args)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    with _PhaseClock(trace_allocs=args.top_allocs > 0) as clock:
        profiler.enable()
        result = algorithm.run(graph, seed=args.seed)
        profiler.disable()
    elapsed = time.perf_counter() - start

    lines = [
        f"phase profile: {args.protocol} kernel={args.kernel} "
        f"n={args.nodes} p={args.probability} eps={args.epsilon} seed={args.seed}",
        f"total wall clock: {elapsed:.3f} s — rounds={result.cost.rounds} "
        f"messages={result.cost.messages}",
        "",
        "per-phase wall clock (includes the local computation feeding each phase):",
    ]
    for name, seconds in sorted(clock.totals.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {seconds:8.3f} s  {name}")
    if args.top_allocs > 0:
        lines += ["", f"per-phase top {args.top_allocs} allocation sites "
                      "(net bytes allocated during the phase, tracemalloc):"]
        for name, _ in sorted(clock.totals.items(), key=lambda kv: -kv[1]):
            sites = clock.alloc_sites.get(name)
            if not sites:
                continue
            lines.append(f"  {name}:")
            ranked = sorted(sites.items(), key=lambda kv: -kv[1])
            for site, size in ranked[: args.top_allocs]:
                lines.append(f"    {size / 1024:10.1f} KiB  {site}")
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream).sort_stats("cumulative")
    stats.print_stats(args.top)
    lines += ["", f"cProfile top {args.top} by cumulative time:", stream.getvalue()]

    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / f"profile_{args.protocol}.txt"
    out_path.write_text(report + "\n", encoding="utf-8")
    print(report)
    print(f"\nwritten to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
