"""Benchmark: batched phase kernels + typed wire plane vs reference closures.

The typed wire-schema refactor moved message *production* onto the columnar
payload plane: A2 evaluates every node's 3-wise hash over the CSR neighbour
rows as one array program and ships its filtered edge batches as typed
column blocks, A3 runs its landmark/withholding phases the same way, and
receivers consume ``inbox.columns(schema)`` views instead of decoding
object payloads.  This benchmark demonstrates the end-to-end payoff on the
workload the ISSUE names — a full Theorem-2 listing pass (A2 ∘ A3) on a
dense ``G(n, 1/2)`` instance with n ≥ 300 — against the per-node reference
closures, which remain the semantic ground truth.

ε is pinned inside the paper's analysis regime: the Theorem-2 formula
``n^ε = √n/(log n)²`` only rises above 1 for n ≈ 65,000+, and below that it
degrades A2's hash range to a single bucket (every edge ships everywhere),
which benchmarks the output model rather than the protocols.

Both kernels must agree exactly — same round count, same per-phase
link-bit maxima, same triangle output — before the timing is considered
meaningful; the assertion repeats the differential suite's check at
benchmark scale.  The acceptance bar is a ≥3x end-to-end speedup at full
size.  Set ``WIRE_PLANE_QUICK=1`` (CI does) for a reduced-size run with a
relaxed ≥2x bar.
"""

from __future__ import annotations

import os
import time

from repro.core import TriangleListing
from repro.graphs import gnp_random_graph

from _bench_utils import record_json, record_table, run_once

QUICK = os.environ.get("WIRE_PLANE_QUICK", "") not in ("", "0")
NUM_NODES = 140 if QUICK else 300
EDGE_PROBABILITY = 0.5
EPSILON = 0.6
SEED = 7
#: Required end-to-end speedup of the batched kernels over the closures.
REQUIRED_SPEEDUP = 2.0 if QUICK else 3.0


def test_wire_plane_speedup(benchmark):
    """Theorem-2 listing: batched kernels must beat the closures ≥3x."""
    graph = gnp_random_graph(NUM_NODES, EDGE_PROBABILITY, seed=42)

    def compare():
        timings = {}
        results = {}
        for kernel in ("batched", "reference"):
            algorithm = TriangleListing(
                repetitions=1, epsilon=EPSILON, kernel=kernel
            )
            start = time.perf_counter()
            results[kernel] = algorithm.run(graph, seed=SEED)
            timings[kernel] = time.perf_counter() - start
        return timings, results

    timings, results = run_once(benchmark, compare)
    batched, reference = results["batched"], results["reference"]

    # The physics must be identical before the timing means anything.
    assert batched.cost == reference.cost
    assert batched.output.union() == reference.output.union()
    batched_phases = [
        (phase.name, phase.rounds, phase.max_link_bits, phase.bits)
        for phase in batched.metrics.phases
    ]
    reference_phases = [
        (phase.name, phase.rounds, phase.max_link_bits, phase.bits)
        for phase in reference.metrics.phases
    ]
    assert batched_phases == reference_phases

    speedup = timings["reference"] / timings["batched"]
    table = "\n".join(
        [
            f"wire-plane benchmark (n={NUM_NODES}, p={EDGE_PROBABILITY}, "
            f"eps={EPSILON}, quick={QUICK})",
            f"  rounds (both kernels):  {batched.cost.rounds}",
            f"  messages per run:       {batched.cost.messages}",
            f"  triangles listed:       {len(batched.output.union())}",
            f"  reference closures:     {timings['reference']:.2f} s",
            f"  batched kernels:        {timings['batched']:.2f} s",
            f"  speedup:                {speedup:.2f}x "
            f"(required ≥{REQUIRED_SPEEDUP}x)",
        ]
    )
    record_table("wire_plane", table)
    record_json(
        "wire_plane",
        {
            "benchmark": "wire_plane",
            "quick": QUICK,
            "num_nodes": NUM_NODES,
            "edge_probability": EDGE_PROBABILITY,
            "epsilon": EPSILON,
            "seed": SEED,
            "rounds": batched.cost.rounds,
            "messages": batched.cost.messages,
            "bits": batched.cost.bits,
            "triangles": len(batched.output.union()),
            "reference_seconds": timings["reference"],
            "batched_seconds": timings["batched"],
            "speedup": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    assert speedup >= REQUIRED_SPEEDUP, table
