"""Experiment S-THM1: scaling of Theorem-1 triangle finding with n.

Sweeps the network size up to **10 000 nodes**, measures the round
complexity of one (A1, A3) finding pass, and compares the measured curve
against the Theorem-1 reference bound ``n^{2/3} (log n)^{2/3}``.

The workload follows a ``√n`` **degree schedule**: ``G(n, p(n))`` with
``p(n) = min(1/2, √n / n)``, i.e. expected degree ``√n``.  Dense ``p = 1/2``
graphs are quadratic in memory and make n=10k sweeps infeasible, while a
constant-degree schedule starves the protocols of triangles; ``d(n) = √n``
keeps the expected per-edge triangle support ``≈ d²/n = Θ(1)``, so every
size has work to do and the asymptotic shape of the round curve is visible.
(The fitted exponent on this schedule is *below* the reference ``2/3`` —
the bound is a worst-case upper bound, and these sweeps only assert the
measured curve stays under it.)

The sweep grid is declared as :class:`repro.api.RunSpec` documents (one per
size) resolved through the algorithm/workload registries and runs on
:class:`repro.analysis.SweepRunner`.  The kernel backend and chunk budget
are threaded through the same registry parameters — set ``REPRO_BACKEND=numba``
and/or ``REPRO_CHUNK_BYTES=<n>`` to sweep under a different backend (the
records must not change; that is the backends' differential contract).

Set ``SCALING_QUICK=1`` (CI does) to drop the two largest sizes.

Shape criteria (what "reproducing the result" means at simulator scale):

* every run is sound and solves the finding problem,
* the measured cost stays below the reference bound times a fixed constant
  across the whole sweep (the bound is an upper bound, and the constant,
  once calibrated, is size-independent),
* the measured cost must not grow faster than the naive baseline's
  ``d_max``-driven cost on the same workloads.
"""

from __future__ import annotations

import math
import os
import time
from typing import List

from repro.analysis import SweepCell, SweepRunner, fit_power_law, render_scaling_table
from repro.api import AlgorithmSpec, RunSpec, WorkloadSpec, run_specs_to_cells
from repro.core import finding_epsilon_asymptotic, theorem1_round_bound

from _bench_utils import record_json, record_table, run_once

QUICK = os.environ.get("SCALING_QUICK", "") not in ("", "0")
SIZES = [600, 1500] if QUICK else [600, 1500, 4000, 10000]
#: Calibrated once on the smallest size and then held fixed: the measured
#: cost divided by the reference bound must not grow with n.
SHAPE_CONSTANT = 6.0
#: Worker processes for the sweep grid.
SWEEP_WORKERS = min(4, os.cpu_count() or 1)
#: Kernel backend / chunk budget for every cell (differentially pinned:
#: any backend must reproduce the numpy records byte-identically).
BACKEND = os.environ.get("REPRO_BACKEND", "numpy")
CHUNK_BYTES = (
    int(os.environ["REPRO_CHUNK_BYTES"])
    if os.environ.get("REPRO_CHUNK_BYTES")
    else None
)

FINDING_ALGORITHM = AlgorithmSpec(
    "theorem1-finding",
    {
        "repetitions": 1,
        "epsilon": finding_epsilon_asymptotic(),
        "backend": BACKEND,
        "chunk_bytes": CHUNK_BYTES,
    },
)
NAIVE_ALGORITHM = AlgorithmSpec("naive-two-hop")


def edge_probability(num_nodes: int) -> float:
    """The √n degree schedule: ``p(n) = min(1/2, √n / n)``."""
    return min(0.5, math.sqrt(num_nodes) / num_nodes)


def _workload_spec(num_nodes: int) -> WorkloadSpec:
    """The fixed-per-size workload (the cell seed drives the algorithm).

    Pinning ``seed`` inside the workload parameters holds the graph fixed
    per size while the cell seed still drives the algorithm's coins.
    """
    return WorkloadSpec(
        "gnp",
        {
            "num_nodes": num_nodes,
            "edge_probability": edge_probability(num_nodes),
            "seed": 1000 + num_nodes,
        },
    )


def _workload(num_nodes: int, _seed: int = 0):
    return _workload_spec(num_nodes).build()


def _sweep_cells(experiment: str, algorithm: AlgorithmSpec) -> List[SweepCell]:
    return run_specs_to_cells(
        [
            RunSpec(
                algorithm=algorithm,
                workload=_workload_spec(num_nodes),
                seed=num_nodes,
                experiment=experiment,
            )
            for num_nodes in SIZES
        ]
    )


def test_finding_scaling_against_theorem1_bound(benchmark):
    """S-THM1: measured finding rounds vs the Theorem-1 reference curve."""

    def sweep():
        start = time.perf_counter()
        with SweepRunner(max_workers=SWEEP_WORKERS) as runner:
            finding_records = runner.run_cells(
                _sweep_cells("S-THM1", FINDING_ALGORITHM)
            )
            naive_records = runner.run_cells(
                _sweep_cells("S-THM1-naive", NAIVE_ALGORITHM)
            )
        return finding_records, naive_records, time.perf_counter() - start

    finding_records, naive_records, sweep_seconds = run_once(benchmark, sweep)
    for record in finding_records:
        assert record.sound
        assert record.solves_finding
    measured = [record.rounds for record in finding_records]
    baseline = [record.rounds for record in naive_records]
    reference = [theorem1_round_bound(n) for n in SIZES]

    fit = fit_power_law([float(n) for n in SIZES], [float(r) for r in measured])
    table = render_scaling_table(
        "S-THM1: Theorem 1 finding on G(n, √n/n) "
        f"(√n degree schedule, backend={BACKEND}, quick={QUICK}), 1 repetition",
        SIZES,
        [float(r) for r in measured],
        reference,
        fit=fit,
        expected_exponent=2.0 / 3.0,
    )
    record_table("finding_scaling", table)
    record_json(
        "finding_scaling",
        {
            "benchmark": "finding_scaling",
            "quick": QUICK,
            "backend": BACKEND,
            "chunk_bytes": CHUNK_BYTES,
            "sizes": SIZES,
            "edge_probabilities": [edge_probability(n) for n in SIZES],
            "measured_rounds": [float(r) for r in measured],
            "naive_baseline_rounds": [float(r) for r in baseline],
            "reference_bound": reference,
            "fit_exponent": fit.exponent,
            "expected_exponent": 2.0 / 3.0,
            "sweep_seconds": sweep_seconds,
        },
    )

    # Upper-bound shape: measured / reference stays below a fixed constant.
    for rounds, bound in zip(measured, reference):
        assert rounds <= SHAPE_CONSTANT * bound

    # The algorithm's cost must not grow faster than the naive baseline's
    # d_max-driven cost: the ratio measured/naive must not increase from the
    # smallest to the largest size by more than measurement noise.
    first_ratio = measured[0] / baseline[0]
    last_ratio = measured[-1] / baseline[-1]
    assert last_ratio <= first_ratio * 1.6


def test_finding_cost_grows_with_size(benchmark):
    """Monotonicity sanity: more nodes cannot make the measured cost collapse."""
    # The endpoint pair re-runs outside the sweep, so the large size is
    # capped at 4000 to keep this sanity check a small fraction of the
    # sweep's budget (the 10k point is covered by the sweep itself).
    large_size = min(SIZES[-1], 4000)

    def endpoints():
        small = FINDING_ALGORITHM.build().run(_workload(SIZES[0]), seed=7)
        large = FINDING_ALGORITHM.build().run(_workload(large_size), seed=7)
        return small.rounds, large.rounds

    small_rounds, large_rounds = run_once(benchmark, endpoints)
    assert large_rounds > small_rounds
