"""Experiment S-THM1: scaling of Theorem-1 triangle finding with n.

Sweeps the network size on dense ``G(n, 0.5)`` workloads, measures the round
complexity of one (A1, A3) finding pass, and compares the measured curve
against the Theorem-1 reference bound ``n^{2/3} (log n)^{2/3}``.

The sweep grid is declared as :class:`repro.api.RunSpec` documents (one per
size) resolved through the algorithm/workload registries and runs on
:class:`repro.analysis.SweepRunner`: each (algorithm × size) cell is an
independent verified record, fanned out over a process pool — the records
(and therefore every assertion below) are identical to the serial loop and
to the pre-registry hand-wired cells, only wall-clock changes.

Shape criteria (what "reproducing the result" means at simulator scale):

* every run is sound and solves the finding problem,
* the measured cost stays below the reference bound times a fixed constant
  across the whole sweep (the bound is an upper bound, and the constant,
  once calibrated, is size-independent),
* the measured cost grows strictly slower than the naive baseline's
  ``d_max = Θ(n)`` on the same workloads.
"""

from __future__ import annotations

import os
from typing import List

from repro.analysis import SweepCell, SweepRunner, fit_power_law, render_scaling_table
from repro.api import AlgorithmSpec, RunSpec, WorkloadSpec, run_specs_to_cells
from repro.core import finding_epsilon_asymptotic, theorem1_round_bound

from _bench_utils import record_json, record_table, run_once

SIZES = [40, 60, 80, 100, 120]
EDGE_PROBABILITY = 0.5
#: Calibrated once on the smallest size and then held fixed: the measured
#: cost divided by the reference bound must not grow with n.
SHAPE_CONSTANT = 6.0
#: Worker processes for the sweep grid.
SWEEP_WORKERS = min(4, os.cpu_count() or 1)

FINDING_ALGORITHM = AlgorithmSpec(
    "theorem1-finding",
    {"repetitions": 1, "epsilon": finding_epsilon_asymptotic()},
)
NAIVE_ALGORITHM = AlgorithmSpec("naive-two-hop")


def _workload_spec(num_nodes: int) -> WorkloadSpec:
    """The fixed-per-size dense workload (the cell seed drives the algorithm).

    Pinning ``seed`` inside the workload parameters holds the graph fixed
    per size while the cell seed still drives the algorithm's coins.
    """
    return WorkloadSpec(
        "gnp",
        {
            "num_nodes": num_nodes,
            "edge_probability": EDGE_PROBABILITY,
            "seed": 1000 + num_nodes,
        },
    )


def _workload(num_nodes: int, _seed: int = 0):
    return _workload_spec(num_nodes).build()


def _sweep_cells(experiment: str, algorithm: AlgorithmSpec) -> List[SweepCell]:
    return run_specs_to_cells(
        [
            RunSpec(
                algorithm=algorithm,
                workload=_workload_spec(num_nodes),
                seed=num_nodes,
                experiment=experiment,
            )
            for num_nodes in SIZES
        ]
    )


def test_finding_scaling_against_theorem1_bound(benchmark):
    """S-THM1: measured finding rounds vs the Theorem-1 reference curve."""

    def sweep():
        with SweepRunner(max_workers=SWEEP_WORKERS) as runner:
            finding_records = runner.run_cells(
                _sweep_cells("S-THM1", FINDING_ALGORITHM)
            )
            naive_records = runner.run_cells(
                _sweep_cells("S-THM1-naive", NAIVE_ALGORITHM)
            )
        return finding_records, naive_records

    finding_records, naive_records = run_once(benchmark, sweep)
    for record in finding_records:
        assert record.sound
        assert record.solves_finding
    measured = [record.rounds for record in finding_records]
    baseline = [record.rounds for record in naive_records]
    reference = [theorem1_round_bound(n) for n in SIZES]

    fit = fit_power_law([float(n) for n in SIZES], [float(r) for r in measured])
    table = render_scaling_table(
        "S-THM1: Theorem 1 finding on G(n, 0.5), 1 repetition",
        SIZES,
        [float(r) for r in measured],
        reference,
        fit=fit,
        expected_exponent=2.0 / 3.0,
    )
    record_table("finding_scaling", table)
    record_json(
        "finding_scaling",
        {
            "benchmark": "finding_scaling",
            "sizes": SIZES,
            "measured_rounds": [float(r) for r in measured],
            "naive_baseline_rounds": [float(r) for r in baseline],
            "reference_bound": reference,
            "fit_exponent": fit.exponent,
            "expected_exponent": 2.0 / 3.0,
        },
    )

    # Upper-bound shape: measured / reference stays below a fixed constant.
    for rounds, bound in zip(measured, reference):
        assert rounds <= SHAPE_CONSTANT * bound

    # The algorithm's cost must not grow faster than the naive baseline's
    # linear d_max cost: the ratio measured/naive must not increase from the
    # smallest to the largest size by more than measurement noise.
    first_ratio = measured[0] / baseline[0]
    last_ratio = measured[-1] / baseline[-1]
    assert last_ratio <= first_ratio * 1.6


def test_finding_cost_grows_with_size(benchmark):
    """Monotonicity sanity: more nodes cannot make the measured cost collapse."""

    def endpoints():
        small = FINDING_ALGORITHM.build().run(_workload(SIZES[0]), seed=7)
        large = FINDING_ALGORITHM.build().run(_workload(SIZES[-1]), seed=7)
        return small.rounds, large.rounds

    small_rounds, large_rounds = run_once(benchmark, endpoints)
    assert large_rounds > small_rounds
