"""Experiment ABL-EPS: the ε trade-off between the heavy and light phases.

The heaviness exponent ε is the paper's central tuning knob: raising it
makes the heavy-triangle machinery (A1/A2) cheaper — fewer sampled
neighbours, smaller hashed edge sets — while making the light-triangle
machinery (A3) more expensive (more landmarks, a larger goodness threshold).
Theorems 1 and 2 choose ε to balance the two sides.

This ablation sweeps ε on a fixed workload and records the measured rounds
of A2 and A3 side by side, verifying the predicted directions:

* A2's cost is non-increasing in ε (up to small sampling noise),
* A3's cost eventually increases with ε,
* the balanced choice used by the Theorem-2 configuration is within a
  constant factor of the best sweep point (i.e. the theory's balancing is
  sane on real measurements).
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import HeavyHashingLister, LightTrianglesLister
from repro.graphs import gnp_random_graph

from _bench_utils import record_json, record_table, run_once

EPSILONS = [0.125, 0.25, 0.375, 0.5, 0.625, 0.75]
NUM_NODES = 96


def test_epsilon_tradeoff(benchmark):
    """ABL-EPS: measured A2/A3 rounds as ε sweeps the unit interval."""
    graph = gnp_random_graph(NUM_NODES, 0.5, seed=4000)

    def sweep():
        rows = []
        for epsilon in EPSILONS:
            heavy = HeavyHashingLister(epsilon=epsilon).run(graph, seed=17)
            light = LightTrianglesLister(epsilon=epsilon).run(graph, seed=17)
            rows.append((epsilon, heavy.rounds, light.rounds))
        return rows

    rows = run_once(benchmark, sweep)
    record_table(
        "epsilon_ablation",
        render_table(
            ["epsilon", "A2 rounds (heavy)", "A3 rounds (light)", "A2 + A3"],
            [
                [f"{eps:.3f}", str(heavy), str(light), str(heavy + light)]
                for eps, heavy, light in rows
            ],
        ),
    )

    record_json(
        "epsilon_ablation",
        {
            "benchmark": "epsilon_ablation",
            "num_nodes": NUM_NODES,
            "epsilons": EPSILONS,
            "a2_rounds": [heavy for _, heavy, _ in rows],
            "a3_rounds": [light for _, _, light in rows],
        },
    )

    a2_costs = [heavy for _, heavy, _ in rows]
    a3_costs = [light for _, _, light in rows]
    # A2 must get cheaper as epsilon grows (finer hashing -> smaller sets).
    assert a2_costs[-1] < a2_costs[0]
    assert all(later <= earlier * 1.25 for earlier, later in zip(a2_costs, a2_costs[1:]))
    # A3's landmark set shrinks as epsilon grows, so the Delta(X) filter
    # weakens and its cost must not decrease overall.
    assert a3_costs[-1] >= a3_costs[0] * 0.8
    # The combined cost at the Theorem-2 exponent (0.5) is within 2x of the
    # best point of the sweep.
    combined = {eps: heavy + light for eps, heavy, light in rows}
    assert combined[0.5] <= 2.0 * min(combined.values())


def test_hash_independence_ablation(benchmark):
    """Pairwise vs 3-wise hashing: correctness (soundness) is unaffected,
    which is exactly why the difference only shows up in Lemma 1's analysis."""
    graph = gnp_random_graph(64, 0.5, seed=4100)

    def run_both():
        three_wise = HeavyHashingLister(epsilon=0.5, independence=3).run(graph, seed=3)
        pair_wise = HeavyHashingLister(epsilon=0.5, independence=2).run(graph, seed=3)
        return three_wise, pair_wise

    three_wise, pair_wise = run_once(benchmark, run_both)
    three_wise.check_soundness(graph)
    pair_wise.check_soundness(graph)
    record_json(
        "hash_independence_ablation",
        {
            "benchmark": "hash_independence_ablation",
            "three_wise_rounds": three_wise.rounds,
            "pair_wise_rounds": pair_wise.rounds,
            "three_wise_triangles": len(three_wise.triangles_found()),
            "pair_wise_triangles": len(pair_wise.triangles_found()),
        },
    )
    record_table(
        "hash_independence_ablation",
        render_table(
            ["independence", "rounds", "distinct triangles reported"],
            [
                ["3-wise (paper)", str(three_wise.rounds), str(len(three_wise.triangles_found()))],
                ["2-wise (ablation)", str(pair_wise.rounds), str(len(pair_wise.triangles_found()))],
            ],
        ),
    )
