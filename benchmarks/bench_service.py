"""Benchmark: warm worker-fleet service vs cold per-sweep runners.

A research session is rarely one sweep: parameters get nudged, seeds get
added, the same workloads get re-measured.  The per-call
:class:`~repro.analysis.experiments.SweepRunner` pays the full
provisioning bill — process-pool spawn, shared-memory workload
materialisation, import warm-up — once per *sweep*; the experiment
service (:mod:`repro.service`) pays it once per *session*: workers stay
resident between jobs and the dispatcher keeps materialised workload
segments warm in its pool.

This benchmark times the same multi-sweep session — ``NUM_SWEEPS``
sweeps of a (probe scales x workload seeds) grid on ``G(n, sqrt(n)/n)``,
the paper's sparse regime — two ways:

* ``cold`` — a fresh ``SweepRunner`` per sweep (today's ``repro sweep``:
  every invocation spawns its own pool and re-materialises segments),
* ``warm`` — one running dispatcher + fleet, one ``submit`` per sweep.

The measured algorithm is the near-zero-cost ``service-probe``, so the
timings isolate provisioning — the cost the warm fleet removes.  After
the timed session one more sweep runs on the same fleet during which a
worker is SIGKILLed while it holds a lease: the requeue machinery must
recover and the store it produces must still be byte-identical to the
serial path.  Every fleet and cold store is compared against a serial
``run_sweep`` reference.  Set ``SERVICE_QUICK=1`` (CI does) for a
reduced-size run with a relaxed bar.
"""

from __future__ import annotations

import filecmp
import math
import os
import signal
import tempfile
import time
from pathlib import Path
from typing import List

from repro.analysis import experiments as _experiments
from repro.analysis.experiments import SweepRunner
from repro.api.specs import AlgorithmSpec, SweepSpec, WorkloadSpec
from repro.api.store import run_sweep
from repro.service import Dispatcher, ServiceClient
from repro.service.probes import PROBE_ALGORITHM

from _bench_utils import record_json, record_table, run_once

QUICK = os.environ.get("SERVICE_QUICK", "") not in ("", "0")
NUM_NODES = 1200 if QUICK else 4000
#: The paper's sparse regime: expected degree sqrt(n).
EDGE_PROBABILITY = math.sqrt(NUM_NODES) / NUM_NODES
WORKLOAD_SEEDS = (1, 2) if QUICK else (1, 2, 3)
PROBE_SCALES = (1, 2) if QUICK else (1, 2, 3)
NUM_SWEEPS = 3
WORKERS = 3
#: The untimed fault sweep's cells sleep briefly so leases are reliably
#: in flight when the SIGKILL lands.
FAULT_SLEEP_SECONDS = 0.2
#: Required aggregate cells/s advantage of the warm fleet.
REQUIRED_SPEEDUP = 1.2 if QUICK else 2.0

PRELOAD = ("repro.service.probes",)


def _spec(index: int, sleep: float = 0.0) -> SweepSpec:
    """Sweep ``index`` of the session: same workloads every time.

    Identical workload documents across sweeps are the point — that is
    what the dispatcher's segment pool keeps warm.
    """
    return SweepSpec(
        experiment=f"service-session-{index}",
        algorithms=tuple(
            AlgorithmSpec(
                PROBE_ALGORITHM,
                {"scale": scale, "sleep_seconds": sleep},
                label=f"probe-{scale}",
            )
            for scale in PROBE_SCALES
        ),
        workload=WorkloadSpec(
            "gnp",
            {"num_nodes": NUM_NODES, "edge_probability": EDGE_PROBABILITY},
        ),
        seeds=WORKLOAD_SEEDS,
    )


def _warmup_spec() -> SweepSpec:
    """A tiny throwaway sweep that spins the fleet up before timing.

    A *different* workload from the session, so warming the workers
    cannot pre-populate the segments the session is measured on — only
    imports and process spawn are amortised, which is what "warm fleet"
    means.
    """
    return SweepSpec(
        experiment="service-warmup",
        algorithms=(AlgorithmSpec(PROBE_ALGORITHM, {"scale": 1}),),
        workload=WorkloadSpec("gnp", {"num_nodes": 60, "edge_probability": 0.3}),
        seeds=(101, 102),
    )


def _kill_one_worker(client: ServiceClient, job_id: str) -> int:
    """SIGKILL a worker once the job is demonstrably under way."""
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        for worker in client.status()["workers"]:
            if worker["lease"] is not None and worker["lease"]["job"] == job_id:
                os.kill(worker["pid"], signal.SIGKILL)
                return worker["pid"]
        time.sleep(0.02)
    raise AssertionError("no worker ever held a lease for the fault sweep")


def test_service_fleet_speedup(benchmark):
    """Warm fleet >=2x cold per-sweep runners on aggregate cells/s."""
    specs = [_spec(index) for index in range(NUM_SWEEPS)]
    fault_spec = _spec(NUM_SWEEPS, sleep=FAULT_SLEEP_SECONDS)
    total_cells = sum(len(spec.cells()) for spec in specs)

    def session():
        with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
            tmp_path = Path(tmp)

            # -- cold: a fresh runner (pool spawn + segment build) per sweep.
            cold_outs = [tmp_path / f"cold-{i}.jsonl" for i in range(NUM_SWEEPS)]
            cold_sweep_seconds: List[float] = []
            cold_start = time.perf_counter()
            for spec, out in zip(specs, cold_outs):
                # A real cold invocation is a fresh ``repro sweep``
                # process; this loop stays in-process (so imports are
                # not unfairly charged to it) but must not let the
                # per-process workload cache leak warmth between sweeps.
                _experiments._GRAPH_CACHE.clear()
                sweep_start = time.perf_counter()
                with SweepRunner(max_workers=WORKERS, plane="shm") as runner:
                    run_sweep(spec, out, runner=runner)
                cold_sweep_seconds.append(time.perf_counter() - sweep_start)
            cold_seconds = time.perf_counter() - cold_start

            # -- warm: one fleet for the whole session.
            fleet_outs = [
                tmp_path / f"fleet-{i}.jsonl" for i in range(NUM_SWEEPS)
            ]
            fault_out = tmp_path / "fleet-fault.jsonl"
            first_record_seconds: List[float] = []
            with Dispatcher(
                tmp_path / "svc",
                workers=WORKERS,
                preload=PRELOAD,
                plane="shm",
            ) as dispatcher:
                with ServiceClient.connect(dispatcher.root) as client:
                    warmup = client.submit(
                        _warmup_spec().to_dict(), out=tmp_path / "warmup.jsonl"
                    )
                    client.wait_job(warmup["id"], timeout=120)

                    warm_start = time.perf_counter()
                    for spec, out in zip(specs, fleet_outs):
                        job = client.submit(spec.to_dict(), out=out)
                        job = client.wait_job(job["id"], timeout=600)
                        first_record_seconds.append(job["first_record_seconds"])
                    warm_seconds = time.perf_counter() - warm_start

                    # Untimed fault sweep on the same (still warm) fleet:
                    # kill a worker mid-job, let the lease requeue, and
                    # demand the recovered store below anyway.
                    fault_job = client.submit(fault_spec.to_dict(), out=fault_out)
                    _kill_one_worker(client, fault_job["id"])
                    client.wait_job(fault_job["id"], timeout=600)
                    segments = client.status()["segments"]

            # -- byte-identity: every store must match a serial reference.
            # Serial runs happen after the timed paths so they cannot warm
            # any process or segment the parallel paths are timed on.
            for index, spec in enumerate(specs):
                reference = tmp_path / f"serial-{index}.jsonl"
                run_sweep(spec, reference)
                assert filecmp.cmp(reference, cold_outs[index], shallow=False), (
                    f"cold sweep {index} diverges from the serial store"
                )
                assert filecmp.cmp(reference, fleet_outs[index], shallow=False), (
                    f"fleet sweep {index} diverges from the serial store"
                )
            fault_reference = tmp_path / "serial-fault.jsonl"
            run_sweep(fault_spec, fault_reference)
            assert filecmp.cmp(fault_reference, fault_out, shallow=False), (
                "the fleet store diverges from the serial store after a "
                "worker was SIGKILLed mid-sweep"
            )

        return cold_seconds, cold_sweep_seconds, warm_seconds, (
            first_record_seconds,
            segments,
        )

    cold_seconds, cold_sweep_seconds, warm_seconds, extras = run_once(
        benchmark, session
    )
    first_record_seconds, segments = extras
    cold_rate = total_cells / cold_seconds
    warm_rate = total_cells / warm_seconds
    speedup = warm_rate / cold_rate

    table = "\n".join(
        [
            f"service benchmark (n={NUM_NODES}, p=sqrt(n)/n, "
            f"{NUM_SWEEPS} sweeps x {len(PROBE_SCALES) * len(WORKLOAD_SEEDS)} "
            f"cells, workers={WORKERS}, quick={QUICK})",
            f"  cold per-sweep runners: {cold_seconds:.2f} s "
            f"({cold_rate:.2f} cells/s; per sweep "
            + ", ".join(f"{value:.2f}s" for value in cold_sweep_seconds)
            + ")",
            f"  warm fleet session:     {warm_seconds:.2f} s "
            f"({warm_rate:.2f} cells/s)",
            f"  time to first record:   "
            + ", ".join(f"{value:.2f}s" for value in first_record_seconds),
            f"  segments:               {segments['built']} built, "
            f"{segments['reused']} reused",
            "  fault sweep:            worker SIGKILLed mid-job; "
            "store byte-identical to serial",
            f"  speedup:                {speedup:.2f}x "
            f"(required >={REQUIRED_SPEEDUP}x)",
        ]
    )
    record_table("service", table)
    record_json(
        "service",
        {
            "benchmark": "service",
            "quick": QUICK,
            "num_nodes": NUM_NODES,
            "edge_probability": EDGE_PROBABILITY,
            "sweeps": NUM_SWEEPS,
            "cells": total_cells,
            "workers": WORKERS,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "cold_cells_per_second": cold_rate,
            "warm_cells_per_second": warm_rate,
            "first_record_seconds": first_record_seconds[0],
            "segments_built": segments["built"],
            "segments_reused": segments["reused"],
            "speedup": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    # Cross-sweep warmth must actually have happened: the session builds
    # each workload segment once (plus the two tiny warmup segments), not
    # once per sweep.
    assert segments["built"] == len(WORKLOAD_SEEDS) + 2, segments
    assert segments["reused"] > 0, segments
    assert speedup >= REQUIRED_SPEEDUP, table
