"""Experiment S-LB: lower-bound accounting on G(n, 1/2) (Theorem 3, Prop. 5).

The lower bounds are information-theoretic statements about *every* listing
algorithm on the random input ``G(n, 1/2)``.  The benchmark measures, for
each implemented listing algorithm:

* ``|T_w|`` — the output size of the busiest node ``w(T)``,
* ``|P(T_w)|`` — the edges covered by that output (Lemma 5 says the node
  must have received essentially this many bits),
* Rivin's inequality ``|P(T_w)| ≥ (√2/3)|T_w|^{2/3}`` (Lemma 4),
* the per-run round floor implied by the accounting, and
* the measured round count, which must respect the floor.

It also records the Proposition-5 story: the naive baseline is a *local*
listing algorithm and pays ``d_max ≈ n/2`` rounds on ``G(n, 1/2)``, while
the sublinear listing algorithm escapes the local-listing floor precisely by
letting nodes output triangles they do not belong to.
"""

from __future__ import annotations

from repro.analysis import nodes_reporting_foreign_triangles, render_table
from repro.core import (
    DolevCliqueListing,
    NaiveTwoHopListing,
    TriangleListing,
    account_information,
    listing_epsilon_asymptotic,
    proposition5_round_lower_bound,
    theorem3_information_bound,
    theorem3_round_lower_bound,
)
from repro.graphs import gnp_random_graph

from _bench_utils import record_json, record_table, run_once

NUM_NODES = 72
SEEDS = (11, 12, 13)


def _instances():
    return [gnp_random_graph(NUM_NODES, 0.5, seed=seed) for seed in SEEDS]


def test_lower_bound_accounting_all_listers(benchmark):
    """S-LB: per-run information accounting for every listing algorithm."""

    def measure():
        rows = []
        for graph in _instances():
            for name, factory in (
                ("Theorem2-listing", lambda: TriangleListing(repetitions=1, epsilon=listing_epsilon_asymptotic())),
                ("Dolev-clique", lambda: DolevCliqueListing()),
                ("naive-two-hop", lambda: NaiveTwoHopListing()),
            ):
                result = factory().run(graph, seed=graph.num_edges)
                accounting = account_information(result, graph)
                rows.append((name, accounting))
        return rows

    rows = run_once(benchmark, measure)
    table_rows = []
    for name, accounting in rows:
        table_rows.append(
            [
                name,
                str(accounting.busiest_output_size),
                str(accounting.covered_edges),
                f"{accounting.rivin_floor:.1f}",
                f"{accounting.round_floor:.2f}",
                str(accounting.measured_rounds),
            ]
        )
        assert accounting.rivin_holds
        assert accounting.respects_floor
    record_json(
        "lower_bound_accounting",
        {
            "benchmark": "lower_bound_accounting",
            "num_nodes": NUM_NODES,
            "runs": [
                {
                    "algorithm": name,
                    "busiest_output_size": accounting.busiest_output_size,
                    "covered_edges": accounting.covered_edges,
                    "rivin_floor": accounting.rivin_floor,
                    "round_floor": accounting.round_floor,
                    "measured_rounds": accounting.measured_rounds,
                }
                for name, accounting in rows
            ],
        },
    )
    record_table(
        "lower_bound_accounting",
        render_table(
            ["algorithm", "|T_w|", "|P(T_w)|", "Rivin floor", "round floor", "measured rounds"],
            table_rows,
        ),
    )


def test_theorem3_closed_form_floor_respected(benchmark):
    """Every measured listing run sits above the constant-explicit Theorem-3 floor."""

    def measure():
        floor = theorem3_round_lower_bound(NUM_NODES)
        info = theorem3_information_bound(NUM_NODES)
        graph = _instances()[0]
        rounds = [
            TriangleListing(repetitions=1, epsilon=listing_epsilon_asymptotic())
            .run(graph, seed=1)
            .rounds,
            DolevCliqueListing().run(graph, seed=1).rounds,
            NaiveTwoHopListing().run(graph, seed=1).rounds,
        ]
        return floor, info, rounds

    floor, info, rounds = run_once(benchmark, measure)
    assert info >= 0.0
    for measured in rounds:
        assert measured >= floor


def test_proposition5_local_vs_foreign_reporting(benchmark):
    """Prop. 5 contrast: local listing pays Θ(n); sublinear listing must report
    triangles at foreign nodes."""

    def measure():
        graph = _instances()[0]
        naive = NaiveTwoHopListing().run(graph, seed=2)
        sublinear = TriangleListing(repetitions=2, epsilon=listing_epsilon_asymptotic()).run(
            graph, seed=2
        )
        return (
            naive.rounds,
            nodes_reporting_foreign_triangles(naive, graph),
            nodes_reporting_foreign_triangles(sublinear, graph),
        )

    naive_rounds, naive_foreign, sublinear_foreign = run_once(benchmark, measure)
    # The naive algorithm is local: every node reports only its own
    # triangles, and its cost respects the Proposition-5 floor.
    assert naive_foreign == []
    assert naive_rounds >= proposition5_round_lower_bound(NUM_NODES)
    # The sublinear algorithm exercises the "counter-intuitive mechanism"
    # the paper highlights: some node outputs a triangle not containing it.
    assert sublinear_foreign
    record_table(
        "proposition5_contrast",
        render_table(
            ["quantity", "value"],
            [
                ["naive (local) rounds on G(72, 1/2)", str(naive_rounds)],
                ["Prop. 5 constant-explicit floor", f"{proposition5_round_lower_bound(NUM_NODES):.2f}"],
                ["nodes reporting foreign triangles (naive)", "0"],
                [
                    "nodes reporting foreign triangles (Theorem 2)",
                    str(len(sublinear_foreign)),
                ],
            ],
        ),
    )
