"""Gate the perf trajectory: diff benchmark results against baselines.

Every benchmark emits a machine-readable ``results/BENCH_<name>.json``
record next to its rendered table.  This script compares those records
against the committed baselines under ``benchmarks/baselines/`` and exits
nonzero when any wall-clock metric (a key ending in ``_seconds``) regressed
by more than the tolerance (default 20%).  Speedup keys are also checked —
a drop is a regression too, and being a ratio it is robust to machine
differences — but at twice the tolerance, since a ratio with a sub-second
numerator amplifies timing jitter that the wall-clock gate absorbs.
``peak_rss_bytes`` (recorded by every benchmark) is gated too, at a
deliberately generous ceiling: RSS is allocator- and machine-shaped, so
only structural memory blow-ups should fail the trajectory.

Usage::

    python benchmarks/compare_trajectory.py              # gate at 20%
    python benchmarks/compare_trajectory.py --ratio-only # CI: speedups only
    python benchmarks/compare_trajectory.py --update     # refresh baselines

``--ratio-only`` skips the absolute wall-clock gates and checks only the
speedup ratios — the right mode for CI, where the runner hardware differs
from the machine the baselines were recorded on (a ratio of two timings
taken on the same run cancels the machine speed out).

Quick-mode runs (the reduced CI variants) are tracked separately: a record
with ``"quick": true`` is compared against (and updated into)
``baselines/BENCH_<name>.quick.json``, full runs against
``baselines/BENCH_<name>.json`` — a quick run is never judged against a
full baseline.  Benchmarks without a baseline are reported and skipped —
run ``--update`` after landing a new benchmark to start its trajectory.
The tolerance can also be set with the ``TRAJECTORY_TOLERANCE``
environment variable (CI uses a loose value to absorb shared-runner noise;
the 20% default is meant for like-for-like machines).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BASELINES_DIR = Path(__file__).resolve().parent / "baselines"


def _load(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def compare_record(
    name: str, current: dict, baseline: dict, tolerance: float, ratio_only: bool
):
    """Yield (metric, baseline, current, regressed) rows for one benchmark."""
    for key in sorted(set(current) & set(baseline)):
        base_value = baseline[key]
        this_value = current[key]
        if not isinstance(base_value, (int, float)) or isinstance(base_value, bool):
            continue
        if key.endswith("_seconds"):
            if ratio_only:
                continue
            regressed = base_value > 0 and this_value > base_value * (1 + tolerance)
            yield key, base_value, this_value, regressed
        elif key == "speedup":
            # Ratios amplify jitter in a small numerator; gate at 2x the
            # wall-clock tolerance so only structural drops fail.
            floor = 1 - min(2 * tolerance, 0.95)
            regressed = base_value > 0 and this_value < base_value * floor
            yield key, base_value, this_value, regressed
        elif key == "peak_rss_bytes":
            # Peak RSS is machine-dependent (allocator, page size, python
            # build) and ratchet-shaped, so gate it generously — only a
            # structural blow-up (well past the wall-clock tolerance, and
            # at least +50%) should fail, and never in ratio-only CI mode.
            if ratio_only:
                continue
            ceiling = 1 + max(2 * tolerance, 0.5)
            regressed = base_value > 0 and this_value > base_value * ceiling
            yield key, base_value, this_value, regressed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("TRAJECTORY_TOLERANCE", "0.20")),
        help="allowed fractional regression (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the current results over the committed baselines",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        help="restrict to the named benchmark(s) (e.g. --only direct_exchange)",
    )
    parser.add_argument(
        "--ratio-only",
        action="store_true",
        help="gate only speedup ratios (machine-independent; for CI)",
    )
    args = parser.parse_args(argv)

    current_files = {
        path.stem[len("BENCH_"):]: path
        for path in sorted(RESULTS_DIR.glob("BENCH_*.json"))
    }
    if args.only:
        current_files = {
            name: path for name, path in current_files.items() if name in args.only
        }
    if not current_files:
        print("no BENCH_*.json results found — run the benchmarks first")
        return 1

    def baseline_path_for(name: str, record: dict) -> Path:
        suffix = ".quick.json" if record.get("quick") else ".json"
        return BASELINES_DIR / f"BENCH_{name}{suffix}"

    if args.update:
        BASELINES_DIR.mkdir(exist_ok=True)
        for name, path in current_files.items():
            record = _load(path)
            destination = baseline_path_for(name, record)
            shutil.copy(path, destination)
            print(f"baseline updated: {destination.name}")
        return 0

    failures = []
    for name, path in current_files.items():
        current = _load(path)
        baseline_path = baseline_path_for(name, current)
        if not baseline_path.exists():
            print(f"{name}: no committed baseline — skipped (run --update to seed)")
            continue
        baseline = _load(baseline_path)
        for key, base_value, this_value, regressed in compare_record(
            name, current, baseline, args.tolerance, args.ratio_only
        ):
            marker = "REGRESSED" if regressed else "ok"
            print(
                f"{name}.{key}: baseline={base_value:.3f} "
                f"current={this_value:.3f} [{marker}]"
            )
            if regressed:
                failures.append(f"{name}.{key}")
    if failures:
        print(
            f"\n{len(failures)} metric(s) regressed beyond "
            f"{args.tolerance:.0%}: {', '.join(failures)}"
        )
        return 1
    print("\nperf trajectory OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
