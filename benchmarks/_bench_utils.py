"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def run_once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The simulations measured here are deterministic round-counting runs that
    can take seconds; repeating them for statistical timing precision would
    only slow the suite without changing the recorded round counts, which
    are the quantity of interest.
    """
    return benchmark.pedantic(function, rounds=1, iterations=1)


def record_table(name: str, text: str) -> None:
    """Persist a rendered result table under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
