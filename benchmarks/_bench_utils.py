"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def peak_rss_bytes() -> Optional[int]:
    """Return this process's peak resident set size in bytes, if knowable.

    Uses ``resource.getrusage`` where available (``ru_maxrss`` is kilobytes
    on Linux, bytes on macOS); falls back to the tracemalloc high-water
    mark when a tracemalloc trace is running, and ``None`` otherwise (the
    caller omits the metric rather than recording a lie).
    """
    try:
        import resource
    except ImportError:
        resource = None
    if resource is not None:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if peak > 0:
            return int(peak) if sys.platform == "darwin" else int(peak) * 1024
    import tracemalloc

    if tracemalloc.is_tracing():
        return tracemalloc.get_traced_memory()[1]
    return None


def run_once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The simulations measured here are deterministic round-counting runs that
    can take seconds; repeating them for statistical timing precision would
    only slow the suite without changing the recorded round counts, which
    are the quantity of interest.
    """
    return benchmark.pedantic(function, rounds=1, iterations=1)


def record_table(name: str, text: str) -> None:
    """Persist a rendered result table under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def record_json(name: str, payload: Dict[str, Any]) -> None:
    """Persist a machine-readable result as ``results/BENCH_<name>.json``.

    Emitted next to the rendered ``results/<name>.txt`` tables so the perf
    trajectory can be tracked across PRs by tooling instead of by reading
    text tables.  Values must be JSON-serialisable (numpy scalars are
    coerced via their ``item()``).  Every record additionally carries the
    process's ``peak_rss_bytes`` so memory regressions join the trajectory
    gate alongside wall-clock.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    if "peak_rss_bytes" not in payload:
        peak = peak_rss_bytes()
        if peak is not None:
            payload = {**payload, "peak_rss_bytes": peak}

    def coerce(value: Any) -> Any:
        item = getattr(value, "item", None)
        return item() if callable(item) else value

    def walk(value: Any) -> Any:
        if isinstance(value, dict):
            return {key: walk(entry) for key, entry in value.items()}
        if isinstance(value, (list, tuple)):
            return [walk(entry) for entry in value]
        return coerce(value)

    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(walk(payload), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def record_result(
    name: str, text: str, payload: Optional[Dict[str, Any]] = None
) -> None:
    """Persist both the rendered table and the machine-readable record."""
    record_table(name, text)
    if payload is not None:
        record_json(name, payload)
