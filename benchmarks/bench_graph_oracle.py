"""Microbenchmark: vectorized CSR triangle oracle vs the seed set loops.

The CSR-substrate refactor (:mod:`repro.graphs.csr`) moved the centralized
ground-truth oracle off pure-Python set intersections onto array
reductions: per-edge supports are packed-bitset AND + popcount passes on
dense instances (sorted-row merges on sparse ones), and triangle counting
is one reduction over the supports.  This benchmark demonstrates the payoff
on the workload the ISSUE names — a 2,000-node dense ``G(n, p)`` instance —
against the seed implementation's set-intersection forward enumeration,
which survives verbatim as :func:`repro.graphs.triangles.iter_triangles_reference`.

The acceptance bar is a ≥10x oracle speedup at full size.  The CSR path is
timed best-of-``REPEATS`` on a fresh view each time (the cached support
array would otherwise make repeats free); the reference loop is timed once
(it is the slow side — repeating it only burns minutes).  Set
``GRAPH_ORACLE_QUICK=1`` (CI does) for a reduced-size run with a relaxed
bar, so perf regressions stay visible in PRs without burning minutes.
"""

from __future__ import annotations

import os
import time

from repro.graphs import gnp_random_graph
from repro.graphs.csr import CSRGraph
from repro.graphs.triangles import iter_triangles_reference

from _bench_utils import record_json, record_table, run_once

QUICK = os.environ.get("GRAPH_ORACLE_QUICK", "") not in ("", "0")
NUM_NODES = 500 if QUICK else 2000
EDGE_PROBABILITY = 0.25
#: Required speedup of the CSR oracle over the seed set-intersection loop.
REQUIRED_SPEEDUP = 5.0 if QUICK else 10.0
#: Timing repetitions for the CSR path; the minimum is compared.
REPEATS = 3


def _seed_style_count(graph) -> int:
    """The seed ``count_triangles``: drain the set-intersection enumeration."""
    return sum(1 for _ in iter_triangles_reference(graph))


def test_triangle_oracle_speedup(benchmark):
    """Dense G(n, p) ground truth: CSR oracle must beat the seed loop ≥10x."""
    graph = gnp_random_graph(NUM_NODES, EDGE_PROBABILITY, seed=42)

    def compare():
        csr_seconds = []
        csr_count = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            # A fresh snapshot per repeat: the support cache must not let
            # later repeats ride on the first one's reduction.
            view = CSRGraph.from_graph(graph)
            csr_count = view.count_triangles()
            csr_seconds.append(time.perf_counter() - start)

        start = time.perf_counter()
        seed_count = _seed_style_count(graph)
        seed_seconds = time.perf_counter() - start

        # Both oracles must agree on the ground truth before timing means
        # anything.
        assert csr_count == seed_count
        return csr_count, min(csr_seconds), seed_seconds

    count, csr_seconds, seed_seconds = run_once(benchmark, compare)
    speedup = seed_seconds / csr_seconds

    table = "\n".join(
        [
            f"triangle-oracle microbenchmark (n={NUM_NODES}, "
            f"p={EDGE_PROBABILITY}, quick={QUICK})",
            f"  triangles:              {count}",
            f"  seed set-intersection:  {seed_seconds * 1000:.1f} ms",
            f"  CSR vectorized oracle:  {csr_seconds * 1000:.1f} ms",
            f"  speedup:                {speedup:.2f}x (required ≥{REQUIRED_SPEEDUP}x)",
        ]
    )
    record_table("graph_oracle", table)
    record_json(
        "graph_oracle",
        {
            "benchmark": "graph_oracle",
            "quick": QUICK,
            "num_nodes": NUM_NODES,
            "edge_probability": EDGE_PROBABILITY,
            "triangles": count,
            "seed_seconds": seed_seconds,
            "csr_seconds": csr_seconds,
            "speedup": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    assert speedup >= REQUIRED_SPEEDUP, table


def test_edge_support_matches_reference_on_sample(benchmark):
    """Spot-check: vectorized per-edge supports equal set-intersection counts."""
    graph = gnp_random_graph(200, 0.2, seed=7)

    def check():
        view = graph.csr()
        supports = view.edge_support()
        u_list = view.edge_u.tolist()
        v_list = view.edge_v.tolist()
        for index in range(0, len(u_list), 17):
            u, v = u_list[index], v_list[index]
            expected = len(graph.neighbors(u) & graph.neighbors(v))
            assert int(supports[index]) == expected
        return len(u_list)

    checked = run_once(benchmark, check)
    assert checked > 0
