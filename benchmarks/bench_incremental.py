"""Microbenchmark: incremental triangle oracle vs recompute-per-batch.

The dynamic-graph layer (:mod:`repro.dynamic`) answers triangle queries
against a stream of edge batches.  The naive serving loop rebuilds the CSR
substrate and reruns the full oracle (global count, per-node counts,
``edge_support``) after every batch — O(Σ_e |N(u) ∩ N(v)|) each time,
regardless of how small the batch was.  The
:class:`~repro.dynamic.IncrementalTriangleOracle` instead walks only the
triangles containing a batch edge, O(Σ deg(endpoint)) per batch.

This benchmark plays the same deterministic batch sequence (mixed inserts
and deletes from a seeded rng) through both paths on the ISSUE's workload —
``G(n, p)`` at n=4000 — asserts they agree *exactly* after every batch,
and requires the incremental path to win by ≥10x on total batch-update
wall-clock.  Set ``INCREMENTAL_QUICK=1`` (CI does) for a reduced-size run
with a relaxed bar.  The initial index build is identical work on both
sides (one full oracle pass) and is excluded from the timed region: the
quantity under test is steady-state update throughput.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.dynamic import IncrementalTriangleOracle
from repro.graphs import Graph, gnp_random_graph

from _bench_utils import record_json, record_table, run_once

QUICK = os.environ.get("INCREMENTAL_QUICK", "") not in ("", "0")
NUM_NODES = 1000 if QUICK else 4000
#: Average degree ~n*p: sparse enough to stream, dense enough that the
#: full oracle pass is real work.
EDGE_PROBABILITY = 0.02 if QUICK else 0.01
NUM_BATCHES = 6
INSERTS_PER_BATCH = 60
DELETES_PER_BATCH = 40
#: Required speedup of batch updates over full recomputation per batch.
REQUIRED_SPEEDUP = 5.0 if QUICK else 10.0
SEED = 2017


def _build_batches(graph, rng):
    """A deterministic mixed insert/delete batch sequence.

    Deletes are drawn from the edges live at that point in the stream;
    inserts are drawn from the complement.  The evolving edge set is
    tracked here so every request is effective (no-op filtering is not
    what this benchmark measures).
    """
    edges = set(graph.edges())
    batches = []
    for _ in range(NUM_BATCHES):
        live = sorted(edges)
        picks = rng.choice(len(live), size=DELETES_PER_BATCH, replace=False)
        delete = [live[int(i)] for i in picks]
        insert = []
        while len(insert) < INSERTS_PER_BATCH:
            u, v = (int(x) for x in rng.integers(0, NUM_NODES, size=2))
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            if edge in edges or edge in insert:
                continue
            insert.append(edge)
        edges -= set(delete)
        edges |= set(insert)
        batches.append((insert, delete))
    return batches


def _full_recompute(num_nodes, edges):
    """The naive serving loop's per-batch work: rebuild and rerun the oracle."""
    csr = Graph(num_nodes, sorted(edges)).csr()
    support = csr.edge_support()
    keys = csr._edge_key_array()
    return (
        csr.count_triangles(),
        csr.local_triangle_counts(),
        dict(zip(keys.tolist(), support.tolist())),
    )


def test_incremental_batch_update_speedup(benchmark):
    """Batched updates must beat recompute-per-batch ≥10x at full size."""
    graph = gnp_random_graph(NUM_NODES, EDGE_PROBABILITY, seed=SEED)
    batches = _build_batches(graph, np.random.default_rng(SEED))

    def compare():
        # Incremental path: seed the indexes once (untimed — both sides
        # start from the same fully-built oracle state), then stream.
        oracle = IncrementalTriangleOracle(graph)
        incremental_totals = []
        start = time.perf_counter()
        for insert, delete in batches:
            delta = oracle.apply_batch(insert=insert, delete=delete)
            incremental_totals.append(delta.triangles_after)
        incremental_seconds = time.perf_counter() - start

        # Recompute path: rebuild the substrate and rerun the full oracle
        # after every batch.  The evolving edge set is maintained outside
        # the timed region on both sides.
        edge_sets = []
        edges = set(graph.edges())
        for insert, delete in batches:
            edges = (edges - set(delete)) | set(insert)
            edge_sets.append(frozenset(edges))
        recompute_results = []
        start = time.perf_counter()
        for snapshot_edges in edge_sets:
            recompute_results.append(_full_recompute(NUM_NODES, snapshot_edges))
        recompute_seconds = time.perf_counter() - start

        # Exact agreement after every batch, or the timing means nothing.
        for step, (total, node_counts, support) in enumerate(recompute_results):
            assert incremental_totals[step] == total, f"batch {step}: total diverged"
        assert oracle.total_triangles == recompute_results[-1][0]
        final_counts = oracle.node_counts()
        assert np.array_equal(final_counts, recompute_results[-1][1])
        n = max(NUM_NODES, 1)
        recompute_support = {
            (key // n, key % n): value
            for key, value in recompute_results[-1][2].items()
        }
        assert oracle.support_map() == recompute_support
        return incremental_totals[-1], incremental_seconds, recompute_seconds

    triangles, incremental_seconds, recompute_seconds = run_once(benchmark, compare)
    speedup = recompute_seconds / incremental_seconds

    table = "\n".join(
        [
            f"incremental-oracle microbenchmark (n={NUM_NODES}, "
            f"p={EDGE_PROBABILITY}, batches={NUM_BATCHES}, quick={QUICK})",
            f"  final triangles:        {triangles}",
            f"  recompute per batch:    {recompute_seconds * 1000:.1f} ms",
            f"  incremental updates:    {incremental_seconds * 1000:.1f} ms",
            f"  speedup:                {speedup:.2f}x (required ≥{REQUIRED_SPEEDUP}x)",
        ]
    )
    record_table("incremental", table)
    record_json(
        "incremental",
        {
            "benchmark": "incremental",
            "quick": QUICK,
            "num_nodes": NUM_NODES,
            "edge_probability": EDGE_PROBABILITY,
            "num_batches": NUM_BATCHES,
            "inserts_per_batch": INSERTS_PER_BATCH,
            "deletes_per_batch": DELETES_PER_BATCH,
            "final_triangles": triangles,
            "recompute_seconds": recompute_seconds,
            "incremental_seconds": incremental_seconds,
            "speedup": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    assert speedup >= REQUIRED_SPEEDUP, table
