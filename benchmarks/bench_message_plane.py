"""Microbenchmark: vectorized message plane vs the seed per-message loops.

The runtime kernel (:mod:`repro.congest.runtime`) rebuilt phase delivery on
batched numpy buffers: sends accumulate into flat ``(src, dst, bits)``
chunks, link-bit maxima and per-node tallies are ``np.bincount``-style
reductions, and inboxes are filled by one grouped pass.  This benchmark
demonstrates the payoff on the workload the ISSUE names — a dense broadcast
phase on a 2,000-node network — against a faithful transcription of the
seed implementation (per-message tuple appends into per-node lists, dict
tallies per link and per receiving node, per-message delivery appends).

The acceptance bar is a ≥3x phase-delivery speedup at full size.  Both
paths are timed best-of-``REPEATS`` (the container this runs in shows
multi-x wall-clock swings under CPU contention; the minimum is the honest
estimate of each path's cost).  Set ``MESSAGE_PLANE_QUICK=1`` (CI does) for
a reduced-size run with a relaxed bar, so perf regressions stay visible in
PRs without burning minutes.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from repro.congest import CongestSimulator, id_bits
from repro.graphs import gnp_random_graph

from _bench_utils import record_json, record_table, run_once

QUICK = os.environ.get("MESSAGE_PLANE_QUICK", "") not in ("", "0")
NUM_NODES = 400 if QUICK else 2000
EDGE_PROBABILITY = 0.5
#: Required speedup of the vectorized plane over the seed delivery loop.
REQUIRED_SPEEDUP = 2.0 if QUICK else 3.0
#: Timing repetitions per path; the minimum of each is compared.
REPEATS = 3


def _seed_style_phase(
    graph, payload: Tuple[str, int], bits: int
) -> Tuple[int, Dict[int, List[Tuple[int, object]]]]:
    """The seed ``CongestSimulator.run_phase`` data path, transcribed.

    Enqueue: every node appends one ``(dst, payload, bits)`` tuple per
    neighbour (what ``NodeContext.send``/``broadcast`` did).  Deliver: one
    Python loop per message maintaining per-link dict tallies, per-node
    received dicts and per-inbox appends (what ``run_phase`` did).
    """
    nodes = range(graph.num_nodes)
    neighbor_sets = {node: graph.neighbors(node) for node in nodes}

    outgoing: Dict[int, List[Tuple[int, object, Optional[int]]]] = {
        node: [] for node in nodes
    }
    for node in nodes:
        targets = neighbor_sets[node]
        queue = outgoing[node]
        for neighbor in targets:
            # The seed send() performed these two membership checks per call.
            if neighbor == node:
                raise AssertionError("self send")
            if neighbor not in targets:
                raise AssertionError("non-neighbour send")
            queue.append((neighbor, payload, bits))

    per_link_bits: Dict[Tuple[int, int], int] = {}
    deliveries: Dict[int, List[Tuple[int, object]]] = {node: [] for node in nodes}
    total_messages = 0
    total_bits = 0
    received_bits: Dict[int, int] = {}
    received_msgs: Dict[int, int] = {}
    for node in nodes:
        for destination, message, size in outgoing[node]:
            link = (node, destination)
            per_link_bits[link] = per_link_bits.get(link, 0) + size
            deliveries[destination].append((node, message))
            total_messages += 1
            total_bits += size
            received_bits[destination] = received_bits.get(destination, 0) + size
            received_msgs[destination] = received_msgs.get(destination, 0) + 1
    max_link_bits = max(per_link_bits.values()) if per_link_bits else 0
    return max_link_bits, deliveries


def test_message_plane_speedup(benchmark):
    """Dense broadcast phase: batched plane must beat the seed loop ≥3x."""
    graph = gnp_random_graph(NUM_NODES, EDGE_PROBABILITY, seed=42)
    bits = id_bits(NUM_NODES)
    payload = ("tok", 1)

    def compare():
        simulator = CongestSimulator(graph, seed=0)
        plane_seconds = []
        seed_seconds = []
        report = None
        seed_max_link_bits = None
        seed_deliveries = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            for context in simulator.contexts:
                context.broadcast_bits(payload, bits=bits)
            report = simulator.run_phase("dense-broadcast")
            plane_seconds.append(time.perf_counter() - start)

            start = time.perf_counter()
            seed_max_link_bits, seed_deliveries = _seed_style_phase(
                graph, payload, bits
            )
            seed_seconds.append(time.perf_counter() - start)

        # Both paths must agree on the physics before timing means anything.
        assert report.max_link_bits == seed_max_link_bits
        assert report.messages == sum(len(v) for v in seed_deliveries.values())
        probe = max(range(NUM_NODES), key=graph.degree)
        assert sorted(simulator.context(probe).received()) == sorted(
            seed_deliveries[probe]
        )
        return report, min(plane_seconds), min(seed_seconds)

    report, plane_seconds, seed_seconds = run_once(benchmark, compare)
    speedup = seed_seconds / plane_seconds

    table = "\n".join(
        [
            f"message-plane microbenchmark (n={NUM_NODES}, p={EDGE_PROBABILITY}, "
            f"quick={QUICK})",
            f"  messages per phase:     {report.messages}",
            f"  seed-style delivery:    {seed_seconds * 1000:.1f} ms",
            f"  vectorized plane:       {plane_seconds * 1000:.1f} ms",
            f"  speedup:                {speedup:.2f}x (required ≥{REQUIRED_SPEEDUP}x)",
        ]
    )
    record_table("message_plane", table)
    record_json(
        "message_plane",
        {
            "benchmark": "message_plane",
            "quick": QUICK,
            "num_nodes": NUM_NODES,
            "edge_probability": EDGE_PROBABILITY,
            "messages": report.messages,
            "seed_seconds": seed_seconds,
            "plane_seconds": plane_seconds,
            "speedup": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    assert speedup >= REQUIRED_SPEEDUP, table
