"""Benchmark-suite configuration.

Ensures ``src/`` and the benchmark directory itself are importable whether
or not the package has been installed, so ``pytest benchmarks/`` works from
a clean checkout.
"""

from __future__ import annotations

import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_SRC), str(_HERE)):
    if path not in sys.path:
        sys.path.insert(0, path)
