"""Experiment T1-R1 (scaling view): the Dolev et al. clique algorithm.

Complements the single-point Table-1 measurement with a size sweep on the
congested clique, verifying:

* full recall at every size (the algorithm is deterministic and exact),
* the measured cost stays below the published ``n^{1/3} (log n)^{2/3}``
  reference curve times a fixed constant,
* the measured cost stays above the Theorem-3 floor (the bound the paper
  proves is tight for the clique up to polylog factors),
* the clique algorithm beats the naive CONGEST baseline at every size.
"""

from __future__ import annotations

from repro.analysis import fit_power_law, render_scaling_table
from repro.core import (
    DolevCliqueListing,
    NaiveTwoHopListing,
    dolev_round_bound,
    theorem3_round_lower_bound,
)
from repro.graphs import gnp_random_graph

from _bench_utils import record_json, record_table, run_once

SIZES = [48, 72, 96, 144, 192]
EDGE_PROBABILITY = 0.5
SHAPE_CONSTANT = 8.0


def test_dolev_clique_scaling(benchmark):
    """Clique listing: measured rounds vs the published n^{1/3} bound."""

    def sweep():
        rows = []
        for num_nodes in SIZES:
            graph = gnp_random_graph(num_nodes, EDGE_PROBABILITY, seed=6000 + num_nodes)
            dolev = DolevCliqueListing().run(graph, seed=1)
            naive = NaiveTwoHopListing().run(graph, seed=1)
            assert dolev.solves_listing(graph)
            rows.append((num_nodes, dolev.rounds, naive.rounds))
        return rows

    rows = run_once(benchmark, sweep)
    measured = [float(dolev) for _, dolev, _ in rows]
    reference = [dolev_round_bound(n) for n in SIZES]
    fit = fit_power_law([float(n) for n in SIZES], measured)
    record_table(
        "dolev_clique_scaling",
        render_scaling_table(
            "T1-R1 scaling: Dolev et al. listing on the congested clique, G(n, 0.5)",
            SIZES,
            measured,
            reference,
            fit=fit,
            expected_exponent=1.0 / 3.0,
        ),
    )

    record_json(
        "dolev_clique_scaling",
        {
            "benchmark": "dolev_clique_scaling",
            "sizes": SIZES,
            "dolev_rounds": [float(d) for _, d, _ in rows],
            "naive_rounds": [float(nv) for _, _, nv in rows],
            "reference_bound": reference,
            "fit_exponent": fit.exponent,
            "expected_exponent": 1.0 / 3.0,
        },
    )

    for (num_nodes, dolev, naive), bound in zip(rows, reference):
        assert dolev <= SHAPE_CONSTANT * bound
        assert dolev >= theorem3_round_lower_bound(num_nodes)
        assert dolev < naive, "the clique algorithm must beat the naive CONGEST baseline"
    # Sublinear growth: the fitted exponent stays clearly below 1.
    assert fit.exponent < 0.85
