"""Experiment S-THM2: scaling of Theorem-2 triangle listing with n.

Sweeps the network size on dense ``G(n, 0.5)`` workloads, measures the round
complexity of one (A2, A3) listing pass, and compares the measured curve
against the Theorem-2 reference bound ``n^{3/4} log n``.

The sweep grid is declared as :class:`repro.api.RunSpec` documents resolved
through the algorithm/workload registries and runs on
:class:`repro.analysis.SweepRunner` (process-pool fan-out, identical records
to the serial loop and to the pre-registry hand-wired cells — see S-THM1).

A single pass is measured (rather than the full ``⌈c log n⌉`` repetitions)
so that the per-pass shape is visible; the repetition factor is a known
multiplicative ``log n`` recorded separately in the table-1 benchmark.

Shape criteria:

* every run is sound; across the sweep the per-pass recall stays high
  (the guarantee is per-triangle-constant-probability, so per-pass recall
  well above 1/2 is the expected behaviour, not certainty),
* the measured cost stays below the reference bound times a fixed constant,
* listing costs at least as much as finding at every size (listing is the
  harder problem).
"""

from __future__ import annotations

import os
from typing import List

from repro.analysis import SweepCell, SweepRunner, fit_power_law, render_scaling_table
from repro.api import AlgorithmSpec, RunSpec, WorkloadSpec, run_specs_to_cells
from repro.core import (
    finding_epsilon_asymptotic,
    listing_epsilon_asymptotic,
    theorem2_round_bound,
)

from _bench_utils import record_json, record_table, run_once

SIZES = [40, 60, 80, 100, 120]
EDGE_PROBABILITY = 0.5
SHAPE_CONSTANT = 6.0
#: Worker processes for the sweep grid.
SWEEP_WORKERS = min(4, os.cpu_count() or 1)

LISTING_ALGORITHM = AlgorithmSpec(
    "theorem2-listing",
    {"repetitions": 1, "epsilon": listing_epsilon_asymptotic()},
)
FINDING_ALGORITHM = AlgorithmSpec(
    "theorem1-finding",
    {"repetitions": 1, "epsilon": finding_epsilon_asymptotic()},
)


def _workload_spec(num_nodes: int) -> WorkloadSpec:
    """The fixed-per-size dense workload (the cell seed drives the algorithm)."""
    return WorkloadSpec(
        "gnp",
        {
            "num_nodes": num_nodes,
            "edge_probability": EDGE_PROBABILITY,
            "seed": 2000 + num_nodes,
        },
    )


def _workload(num_nodes: int, _seed: int = 0):
    return _workload_spec(num_nodes).build()


def _sweep_cells() -> List[SweepCell]:
    return run_specs_to_cells(
        [
            RunSpec(
                algorithm=LISTING_ALGORITHM,
                workload=_workload_spec(num_nodes),
                seed=num_nodes,
                experiment="S-THM2",
            )
            for num_nodes in SIZES
        ]
    )


def test_listing_scaling_against_theorem2_bound(benchmark):
    """S-THM2: measured listing rounds vs the Theorem-2 reference curve."""

    def sweep():
        with SweepRunner(max_workers=SWEEP_WORKERS) as runner:
            return runner.run_cells(_sweep_cells())

    records = run_once(benchmark, sweep)
    for record in records:
        assert record.sound
    measured = [float(record.rounds) for record in records]
    recalls = [record.recall for record in records]
    reference = [theorem2_round_bound(n) for n in SIZES]

    fit = fit_power_law([float(n) for n in SIZES], measured)
    table = render_scaling_table(
        "S-THM2: Theorem 2 listing on G(n, 0.5), 1 repetition "
        f"(per-pass recalls: {', '.join(f'{r:.2f}' for r in recalls)})",
        SIZES,
        measured,
        reference,
        fit=fit,
        expected_exponent=3.0 / 4.0,
    )
    record_table("listing_scaling", table)
    record_json(
        "listing_scaling",
        {
            "benchmark": "listing_scaling",
            "sizes": SIZES,
            "edge_probability": EDGE_PROBABILITY,
            "measured_rounds": measured,
            "reference_bound": reference,
            "recalls": recalls,
            "fit_exponent": fit.exponent,
            "expected_exponent": 3.0 / 4.0,
        },
    )

    for rounds, bound in zip(measured, reference):
        assert rounds <= SHAPE_CONSTANT * bound
    assert min(recalls) >= 0.5
    assert sum(recalls) / len(recalls) >= 0.9


def test_listing_costs_at_least_finding(benchmark):
    """Listing is the harder problem: per-pass cost dominates finding's."""

    def compare():
        pairs = []
        for num_nodes in (SIZES[0], SIZES[-1]):
            graph = _workload(num_nodes)
            listing = LISTING_ALGORITHM.build().run(graph, seed=3)
            finding = FINDING_ALGORITHM.build().run(graph, seed=3)
            pairs.append((listing.rounds, finding.rounds))
        return pairs

    pairs = run_once(benchmark, compare)
    for listing_rounds, finding_rounds in pairs:
        assert listing_rounds >= 0.8 * finding_rounds


def test_full_listing_recall_with_amplification(benchmark):
    """With the paper's ⌈log n⌉ repetitions the listing recall reaches 1.0."""

    def amplified():
        graph = _workload(80)
        result = AlgorithmSpec(
            "theorem2-listing", {"epsilon": listing_epsilon_asymptotic()}
        ).build().run(graph, seed=9)
        return result.listing_recall(graph), result.rounds

    recall, _ = run_once(benchmark, amplified)
    assert recall == 1.0
