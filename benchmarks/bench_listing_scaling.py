"""Experiment S-THM2: scaling of Theorem-2 triangle listing with n.

Sweeps the network size up to **10 000 nodes**, measures the round
complexity of one (A2, A3) listing pass, and compares the measured curve
against the Theorem-2 reference bound ``n^{3/4} log n``.

The workload follows the same ``√n`` degree schedule as S-THM1:
``G(n, p(n))`` with ``p(n) = min(1/2, √n / n)``, keeping the expected
per-edge triangle support ``≈ d²/n = Θ(1)`` so every size both has
triangles to list and stays tractable at n=10k (a dense ``p = 1/2``
workload is quadratic in memory and infeasible at that size).  On this
schedule every edge is light, so A3 carries the listing and per-pass
recall is expected to sit at (not just near) 1.0.

The sweep grid is declared as :class:`repro.api.RunSpec` documents resolved
through the algorithm/workload registries and runs on
:class:`repro.analysis.SweepRunner`.  The kernel backend and chunk budget
thread through the same registry parameters — ``REPRO_BACKEND=numba`` /
``REPRO_CHUNK_BYTES=<n>`` sweep under a different backend, which must not
change a single record.  Set ``SCALING_QUICK=1`` (CI does) to drop the two
largest sizes.

A single pass is measured (rather than the full ``⌈c log n⌉`` repetitions)
so that the per-pass shape is visible; the repetition factor is a known
multiplicative ``log n`` recorded separately in the table-1 benchmark.

Shape criteria:

* every run is sound; across the sweep the per-pass recall stays high
  (the guarantee is per-triangle-constant-probability, so per-pass recall
  well above 1/2 is the expected behaviour, not certainty),
* the measured cost stays below the reference bound times a fixed constant,
* listing costs at least as much as finding at every size (listing is the
  harder problem).
"""

from __future__ import annotations

import math
import os
import time
from typing import List

from repro.analysis import SweepCell, SweepRunner, fit_power_law, render_scaling_table
from repro.api import AlgorithmSpec, RunSpec, WorkloadSpec, run_specs_to_cells
from repro.core import (
    finding_epsilon_asymptotic,
    listing_epsilon_asymptotic,
    theorem2_round_bound,
)

from _bench_utils import record_json, record_table, run_once

QUICK = os.environ.get("SCALING_QUICK", "") not in ("", "0")
SIZES = [600, 1500] if QUICK else [600, 1500, 4000, 10000]
SHAPE_CONSTANT = 6.0
#: Worker processes for the sweep grid.
SWEEP_WORKERS = min(4, os.cpu_count() or 1)
#: Kernel backend / chunk budget for every cell (differentially pinned).
BACKEND = os.environ.get("REPRO_BACKEND", "numpy")
CHUNK_BYTES = (
    int(os.environ["REPRO_CHUNK_BYTES"])
    if os.environ.get("REPRO_CHUNK_BYTES")
    else None
)

LISTING_ALGORITHM = AlgorithmSpec(
    "theorem2-listing",
    {
        "repetitions": 1,
        "epsilon": listing_epsilon_asymptotic(),
        "backend": BACKEND,
        "chunk_bytes": CHUNK_BYTES,
    },
)
FINDING_ALGORITHM = AlgorithmSpec(
    "theorem1-finding",
    {
        "repetitions": 1,
        "epsilon": finding_epsilon_asymptotic(),
        "backend": BACKEND,
        "chunk_bytes": CHUNK_BYTES,
    },
)


def edge_probability(num_nodes: int) -> float:
    """The √n degree schedule: ``p(n) = min(1/2, √n / n)``."""
    return min(0.5, math.sqrt(num_nodes) / num_nodes)


def _workload_spec(num_nodes: int) -> WorkloadSpec:
    """The fixed-per-size workload (the cell seed drives the algorithm)."""
    return WorkloadSpec(
        "gnp",
        {
            "num_nodes": num_nodes,
            "edge_probability": edge_probability(num_nodes),
            "seed": 2000 + num_nodes,
        },
    )


def _workload(num_nodes: int, _seed: int = 0):
    return _workload_spec(num_nodes).build()


def _sweep_cells() -> List[SweepCell]:
    return run_specs_to_cells(
        [
            RunSpec(
                algorithm=LISTING_ALGORITHM,
                workload=_workload_spec(num_nodes),
                seed=num_nodes,
                experiment="S-THM2",
            )
            for num_nodes in SIZES
        ]
    )


def test_listing_scaling_against_theorem2_bound(benchmark):
    """S-THM2: measured listing rounds vs the Theorem-2 reference curve."""

    def sweep():
        start = time.perf_counter()
        with SweepRunner(max_workers=SWEEP_WORKERS) as runner:
            return runner.run_cells(_sweep_cells()), time.perf_counter() - start

    records, sweep_seconds = run_once(benchmark, sweep)
    for record in records:
        assert record.sound
    measured = [float(record.rounds) for record in records]
    recalls = [record.recall for record in records]
    reference = [theorem2_round_bound(n) for n in SIZES]

    fit = fit_power_law([float(n) for n in SIZES], measured)
    table = render_scaling_table(
        "S-THM2: Theorem 2 listing on G(n, √n/n) "
        f"(√n degree schedule, backend={BACKEND}, quick={QUICK}), 1 repetition "
        f"(per-pass recalls: {', '.join(f'{r:.2f}' for r in recalls)})",
        SIZES,
        measured,
        reference,
        fit=fit,
        expected_exponent=3.0 / 4.0,
    )
    record_table("listing_scaling", table)
    record_json(
        "listing_scaling",
        {
            "benchmark": "listing_scaling",
            "quick": QUICK,
            "backend": BACKEND,
            "chunk_bytes": CHUNK_BYTES,
            "sizes": SIZES,
            "edge_probabilities": [edge_probability(n) for n in SIZES],
            "measured_rounds": measured,
            "reference_bound": reference,
            "recalls": recalls,
            "fit_exponent": fit.exponent,
            "expected_exponent": 3.0 / 4.0,
            "sweep_seconds": sweep_seconds,
        },
    )

    for rounds, bound in zip(measured, reference):
        assert rounds <= SHAPE_CONSTANT * bound
    assert min(recalls) >= 0.5
    assert sum(recalls) / len(recalls) >= 0.9


def test_listing_costs_at_least_finding(benchmark):
    """Listing is the harder problem: per-pass cost dominates finding's."""
    # Endpoint re-runs outside the sweep: cap the large size at 4000 so the
    # comparison stays a fraction of the sweep budget (the 10k point's cost
    # is already measured by the sweep itself).
    compare_sizes = (SIZES[0], min(SIZES[-1], 4000))

    def compare():
        pairs = []
        for num_nodes in compare_sizes:
            graph = _workload(num_nodes)
            listing = LISTING_ALGORITHM.build().run(graph, seed=3)
            finding = FINDING_ALGORITHM.build().run(graph, seed=3)
            pairs.append((listing.rounds, finding.rounds))
        return pairs

    pairs = run_once(benchmark, compare)
    for listing_rounds, finding_rounds in pairs:
        assert listing_rounds >= 0.8 * finding_rounds


def test_full_listing_recall_with_amplification(benchmark):
    """With the paper's ⌈log n⌉ repetitions the listing recall reaches 1.0."""

    def amplified():
        graph = _workload(SIZES[0])
        result = AlgorithmSpec(
            "theorem2-listing",
            {
                "epsilon": listing_epsilon_asymptotic(),
                "backend": BACKEND,
                "chunk_bytes": CHUNK_BYTES,
            },
        ).build().run(graph, seed=9)
        return result.listing_recall(graph), result.rounds

    recall, _ = run_once(benchmark, amplified)
    assert recall == 1.0
