"""Compatibility shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables the legacy
``setup.py develop`` editable-install path (``pip install -e . --no-use-pep517
--no-build-isolation``) on toolchains too old to build PEP 660 editable
wheels offline.
"""

from setuptools import setup

setup()
